"""Cluster node processes (primaries, replicas) and their supervisor.

One attribute-range shard = one **primary** process owning the shard's
durability directory (``WriteAheadLog`` + snapshots) plus N **replica**
processes serving snapshot-isolated reads from a read-only
:class:`~repro.service.engine.IndexService`.  All traffic — client
requests and the replication stream — speaks the front door's
length-prefixed JSON framing over localhost TCP sockets.

Catch-up protocol (new replica, restarted replica, or one told to
resync): load the newest ``snapshot-<seq>.npz`` straight from the
shard's durability directory (nodes share the filesystem; only the live
tail travels over the socket), then subscribe to the primary at that
sequence number and apply shipped records in order.  A primary whose
log was truncated past the subscriber's position answers ``resync``
(see :mod:`repro.cluster.ship`) and the replica reloads.

Supervision follows :mod:`repro.parallel.pool`'s one-pipe-pair-per-peer
discipline: every node process gets a dedicated control pipe (parent →
child commands) and status pipe (child → parent ready handshake), so no
two nodes ever contend on a shared queue and a wedged node cannot
corrupt its siblings' channels.  Nodes are killable at any instant
(``SIGKILL`` chaos): the primary's WAL tolerates torn tails, and a
restarted node re-runs the catch-up protocol from durable state.
"""

from __future__ import annotations

import json
import multiprocessing
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..frontend.protocol import ProtocolError, recv_frame, send_frame
from ..obs import counter, gauge
from ..service.engine import IndexService
from ..service.router import quantile_boundaries
from ..service.wal import WALError, latest_snapshot
from .ship import NeedsResync, WalShipper, apply_stream

__all__ = ["NodeError", "ClusterSupervisor", "seed_shards"]

_REPLICA_APPLIED = counter("cluster.replica.applied_records")
_REPLICA_RESYNCS = counter("cluster.replica.resyncs")
_REPLICA_APPLIED_SEQ = gauge("cluster.replica.applied_seq")
_REPLICA_LAG = gauge("cluster.replica.lag_records")

#: Manifest file naming the cluster layout inside a cluster directory.
MANIFEST_NAME = "cluster.json"

#: How often supervision loops wake to poll liveness / handshakes.
_POLL_S = 0.05


class NodeError(RuntimeError):
    """A cluster node failed to start, answer, or stop."""


# ----------------------------------------------------------------------
# Request handling (shared by both roles)
# ----------------------------------------------------------------------
def _query_reply(service: IndexService, request: dict) -> dict:
    """Answer one query request from a service (either role)."""
    result = service.query(
        np.asarray(request["vector"], dtype=np.float64),
        float(request["lo"]),
        float(request["hi"]),
        int(request["k"]),
        l_budget=request.get("l_budget"),
    )
    stats = result.stats
    return {
        "ok": True,
        "ids": [int(i) for i in result.ids],
        "distances": [float(d) for d in result.distances],
        "stats": {
            "num_candidate_clusters": stats.num_candidate_clusters,
            "num_candidates": stats.num_candidates,
            "num_in_range": stats.num_in_range,
            "cover_nodes": stats.cover_nodes,
            "l_used": stats.l_used,
        },
    }


def _accept_loop(
    listener: socket.socket,
    handler: Callable[[socket.socket], None],
    stop: threading.Event,
) -> None:
    """Accept connections until the listener closes; one thread each."""
    while not stop.is_set():
        try:
            conn, _ = listener.accept()
        except OSError:
            return  # listener closed — shutting down
        threading.Thread(
            target=handler, args=(conn,), daemon=True
        ).start()


# ----------------------------------------------------------------------
# Primary process
# ----------------------------------------------------------------------
def _start_primary_controller(service: IndexService):
    """Build and start a per-primary feedback controller, or ``None``.

    A primary holds only PQ codes, so the probe is the self-referential
    :class:`~repro.control.probes.BudgetRecallProbe` (current policy vs
    exhaustive budget) synthesized from the index's own trained state.
    The ``l_base`` envelope is derived from the recovered policy: one
    quarter to four times the seeded value, stepped in quarters.  Shards
    whose index carries no L policy have no knob to manage and run
    uncontrolled.
    """
    from ..control import (
        BudgetRecallProbe,
        ControlDaemon,
        KnobEnvelope,
        ServiceLKnob,
    )
    from ..core.adaptive import FixedLPolicy

    policy = service.knobs()["l_policy"]
    if policy is None:
        return None
    l0 = int(policy.l if isinstance(policy, FixedLPolicy) else policy.l_base)
    envelope = KnobEnvelope(
        min_value=max(1, l0 // 4),
        max_value=4 * max(1, l0),
        step=max(1, l0 // 4),
    )

    def query_fn(vector, lo, hi, k, l_budget=None):
        return service.query(vector, lo, hi, k, l_budget=l_budget)

    daemon = ControlDaemon(
        BudgetRecallProbe.from_index(service.index),
        query_fn,
        l_knobs=[ServiceLKnob(service, envelope)],
        recall_floor=0.95,
        interval_s=1.0,
    )
    daemon.start()
    return daemon


def _control_reply(controller, request: dict) -> dict:
    """Answer a ``control`` request: controller stats, knobs, decisions.

    ``{"type": "control", "cycle": true}`` additionally drives one
    synchronous :meth:`~repro.control.ControlDaemon.run_cycle` before
    answering — the deterministic hook tests and operators use instead
    of waiting out the background interval (cycles are serialized by the
    daemon's internal mutex, so racing the background thread is safe).
    """
    if controller is None:
        return {"ok": True, "enabled": False}
    from dataclasses import asdict

    reply: dict = {"ok": True, "enabled": True}
    if request.get("cycle"):
        report = controller.run_cycle()
        reply["cycle_report"] = {
            "recall": report["recall"],
            "window_p99_ms": report["window_p99_ms"],
            "adjusted": [asdict(d) for d in report["adjusted"]],
            "rolled_back": [asdict(d) for d in report["rolled_back"]],
        }
    stats = controller.stats
    reply.update(
        {
            "cycles": stats.cycles,
            "adjustments": stats.adjustments,
            "rollbacks": stats.rollbacks,
            "probe_passes": stats.probe_passes,
            "knobs": controller.knob_values(),
            "decisions": [asdict(d) for d in list(controller.decisions)[-16:]],
        }
    )
    return reply


def _primary_request_reply(
    service: IndexService, request: dict, controller=None
) -> dict:
    """Answer one non-subscribe request on a primary connection.

    Writes are idempotent — an insert of an oid already present (or a
    delete of one already gone) answers ok with ``"duplicate": true``
    instead of failing, which turns the coordinator's at-least-once
    retry after an ambiguous disconnect into exactly-once effect.
    Genuine duplicate inserts are excluded client-side by the
    coordinator's oid → shard map.
    """
    rtype = request.get("type")
    if rtype == "query":
        return _query_reply(service, request)
    if rtype == "insert":
        oid = int(request["oid"])
        if oid in service:
            return {"ok": True, "seq": service.wal.last_seq, "duplicate": True}
        service.insert(
            oid,
            np.asarray(request["vector"], dtype=np.float64),
            float(request["attr"]),
        )
        return {"ok": True, "seq": service.wal.last_seq}
    if rtype == "delete":
        oid = int(request["oid"])
        if oid not in service:
            return {"ok": True, "seq": service.wal.last_seq, "duplicate": True}
        service.delete(oid)
        return {"ok": True, "seq": service.wal.last_seq}
    if rtype == "ids":
        return {"ok": True, "ids": [int(i) for i in service.index.ivf.ids()]}
    if rtype == "snapshot":
        service.snapshot()
        return {"ok": True, "seq": service.wal.last_seq}
    if rtype == "stats":
        return {
            "ok": True,
            "role": "primary",
            "last_seq": service.wal.last_seq,
            "size": len(service),
        }
    if rtype == "control":
        return _control_reply(controller, request)
    return {"ok": False, "error": f"unknown request type {rtype!r}"}


def _serve_primary_connection(
    sock: socket.socket,
    service: IndexService,
    shipper: WalShipper,
    stop: threading.Event,
    controller=None,
) -> None:
    """One primary connection: request/reply, or a subscription stream."""
    with sock:
        while not stop.is_set():
            try:
                request = recv_frame(sock)
            except (ProtocolError, OSError):
                return
            if request is None:
                return
            if request.get("type") == "subscribe":
                try:
                    shipper.serve(sock, int(request.get("seq", 0)), stop)
                except OSError:
                    pass  # subscriber went away mid-stream
                return
            try:
                reply = _primary_request_reply(service, request, controller)
            except Exception as error:  # repro: noqa-R004 — connection fault barrier: any request error must become an error reply, not kill the node
                reply = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            try:
                send_frame(sock, reply)
            except OSError:
                return


def _primary_main(
    shard: int, wal_dir: str, control: bool, ctrl_recv, status_send
) -> None:
    """Primary process entry point: recover, listen, serve until stopped.

    Recovers the shard service from its durability directory (newest
    snapshot + WAL tail replay), binds an ephemeral localhost port, and
    reports ``("ready", port, last_seq)`` on the status pipe.  The main
    thread then blocks on the control pipe; connections are served by
    daemon threads, so a ``("stop",)`` command (or parent death closing
    the pipe) shuts the node down promptly.  With ``control`` on, a
    per-primary :class:`~repro.control.ControlDaemon` self-tunes the
    shard's ``l_base`` against a budget-recall probe; query it (or drive
    a cycle) with a ``{"type": "control"}`` request.
    """
    service = IndexService.recover(wal_dir)
    controller = _start_primary_controller(service) if control else None
    shipper = WalShipper(service.wal)
    stop = threading.Event()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen()
    port = listener.getsockname()[1]
    threading.Thread(
        target=_accept_loop,
        args=(
            listener,
            lambda conn: _serve_primary_connection(
                conn, service, shipper, stop, controller
            ),
            stop,
        ),
        daemon=True,
        name=f"repro-cluster-p{shard}-accept",
    ).start()
    status_send.send(("ready", port, service.wal.last_seq))
    while True:
        try:
            command = ctrl_recv.recv()
        except EOFError:
            break  # parent went away
        if command is None or command[0] == "stop":
            break
    stop.set()
    listener.close()
    if controller is not None:
        controller.stop()
    service.close()
    try:
        status_send.send(("stopped",))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


# ----------------------------------------------------------------------
# Replica process
# ----------------------------------------------------------------------
class _ReplicaState:
    """One replica's mutable state, shared between its threads.

    The query plane reads ``service`` (a read-only
    :class:`IndexService`), the ship thread advances it through
    ``apply`` and may swap in a whole new service on resync; the control
    thread retargets ``primary_port`` when the primary restarts.  All
    cross-thread fields live behind one mutex.
    """

    def __init__(self, wal_dir: Path, primary_port: int) -> None:
        self.wal_dir = Path(wal_dir)
        self._mutex = threading.Lock()
        self._service: IndexService | None = None
        self._applied_seq = 0
        self._primary_last_seq = 0
        self._primary_port = int(primary_port)
        self._ship_sock: socket.socket | None = None

    # -- query / stats plane -------------------------------------------
    @property
    def service(self) -> IndexService:
        """The current read-only service (swapped whole on resync)."""
        with self._mutex:
            if self._service is None:
                raise NodeError("replica has no loaded snapshot yet")
            return self._service

    @property
    def applied_seq(self) -> int:
        """Sequence number of the last record applied (or snapshot base)."""
        with self._mutex:
            return self._applied_seq

    def stats(self) -> dict:
        """The replica's stats reply (role, seqs, lag, size)."""
        with self._mutex:
            service = self._service
            applied = self._applied_seq
            primary = self._primary_last_seq
        return {
            "ok": True,
            "role": "replica",
            "applied_seq": applied,
            "primary_last_seq": primary,
            "lag": max(0, primary - applied),
            "size": len(service) if service is not None else 0,
        }

    # -- ship plane ----------------------------------------------------
    @property
    def primary_port(self) -> int:
        """The primary's current port (retargeted on primary restart)."""
        with self._mutex:
            return self._primary_port

    def retarget_primary(self, port: int) -> None:
        """Point at a restarted primary and drop the current stream."""
        with self._mutex:
            self._primary_port = int(port)
            sock = self._ship_sock
        if sock is not None:
            try:
                sock.close()  # wakes the ship thread's blocking recv
            except OSError:  # pragma: no cover - already closed
                pass

    def set_ship_socket(self, sock: socket.socket | None) -> None:
        """Publish the live subscription socket (None between streams)."""
        with self._mutex:
            self._ship_sock = sock

    def close_ship_socket(self) -> None:
        """Drop the live stream, unblocking the ship thread."""
        self.set_ship_socket(None)

    def load_snapshot(self) -> None:
        """(Re)load the newest snapshot from the shard's directory.

        Skipped when the newest snapshot is not ahead of what this
        replica already applied (a resync races the snapshot becoming
        visible; re-subscribing from the current position is correct).
        """
        from ..io.serialization import load_index

        newest = latest_snapshot(self.wal_dir)
        if newest is None:
            raise WALError(f"{self.wal_dir}: no snapshot to bootstrap from")
        seq, path = newest
        with self._mutex:
            if self._service is not None and seq <= self._applied_seq:
                return
        index = load_index(path)
        service = IndexService(index, read_only=True)
        with self._mutex:
            self._service = service
            self._applied_seq = seq
        _REPLICA_APPLIED_SEQ.set(seq)

    def apply(self, records: list, primary_last_seq: int) -> None:
        """Apply one shipped batch (or heartbeat) and refresh lag gauges."""
        with self._mutex:
            service = self._service
        if records and service is not None:
            service.apply_records(records)
            applied = records[-1].seq
            with self._mutex:
                self._applied_seq = applied
                self._primary_last_seq = max(primary_last_seq, applied)
            _REPLICA_APPLIED.inc(len(records))
            _REPLICA_APPLIED_SEQ.set(applied)
        else:
            with self._mutex:
                self._primary_last_seq = max(
                    self._primary_last_seq, primary_last_seq
                )
        with self._mutex:
            lag = max(0, self._primary_last_seq - self._applied_seq)
        _REPLICA_LAG.set(lag)


def _replica_ship_loop(state: _ReplicaState, stop: threading.Event) -> None:
    """Subscribe → apply → reconnect forever (the replica's write plane).

    Every pass (re)connects to the primary's current port, subscribes at
    the replica's applied sequence number, and applies the stream until
    it breaks.  ``NeedsResync`` reloads the newest snapshot first; any
    disconnect (primary killed, primary restarted, stream error) just
    retries — durable state lives with the primary, so the replica can
    always catch back up.
    """
    while not stop.is_set():
        try:
            sock = socket.create_connection(
                ("127.0.0.1", state.primary_port), timeout=5.0
            )
        except OSError:
            stop.wait(_POLL_S)
            continue
        sock.settimeout(None)
        state.set_ship_socket(sock)
        try:
            send_frame(sock, {"type": "subscribe", "seq": state.applied_seq})
            apply_stream(sock, state.apply, peer=f"primary:{state.primary_port}")
        except NeedsResync:
            _REPLICA_RESYNCS.inc()
            try:
                state.load_snapshot()
            except WALError:  # pragma: no cover - snapshot mid-replace
                pass
        except Exception:  # repro: noqa-R004 — ship-loop fault barrier: a disconnect or damaged stream must trigger reconnect from the durable seq, never kill the replica
            pass
        finally:
            state.set_ship_socket(None)
            try:
                sock.close()
            except OSError:  # pragma: no cover - already closed
                pass
        stop.wait(_POLL_S / 2)


def _serve_replica_connection(
    sock: socket.socket, state: _ReplicaState, stop: threading.Event
) -> None:
    """One replica connection: queries and stats only."""
    with sock:
        while not stop.is_set():
            try:
                request = recv_frame(sock)
            except (ProtocolError, OSError):
                return
            if request is None:
                return
            rtype = request.get("type")
            try:
                if rtype == "query":
                    reply = _query_reply(state.service, request)
                elif rtype == "stats":
                    reply = state.stats()
                else:
                    reply = {
                        "ok": False,
                        "error": f"replica cannot serve {rtype!r}",
                    }
            except Exception as error:  # repro: noqa-R004 — connection fault barrier: any request error must become an error reply, not kill the node
                reply = {"ok": False, "error": f"{type(error).__name__}: {error}"}
            try:
                send_frame(sock, reply)
            except OSError:
                return


def _replica_main(
    shard: int, wal_dir: str, primary_port: int, ctrl_recv, status_send
) -> None:
    """Replica process entry point: bootstrap, tail, serve until stopped.

    Bootstraps from the newest snapshot in the shard's durability
    directory, starts the ship thread (subscribe + apply), binds an
    ephemeral port for reads, and reports ``("ready", port,
    applied_seq)``.  Control commands: ``("stop",)`` shuts down,
    ``("primary", port)`` retargets the subscription after a primary
    restart.
    """
    state = _ReplicaState(Path(wal_dir), primary_port)
    state.load_snapshot()
    stop = threading.Event()
    threading.Thread(
        target=_replica_ship_loop,
        args=(state, stop),
        daemon=True,
        name=f"repro-cluster-r{shard}-ship",
    ).start()
    listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
    listener.bind(("127.0.0.1", 0))
    listener.listen()
    port = listener.getsockname()[1]
    threading.Thread(
        target=_accept_loop,
        args=(
            listener,
            lambda conn: _serve_replica_connection(conn, state, stop),
            stop,
        ),
        daemon=True,
        name=f"repro-cluster-r{shard}-accept",
    ).start()
    status_send.send(("ready", port, state.applied_seq))
    while True:
        try:
            command = ctrl_recv.recv()
        except EOFError:
            break  # parent went away
        if command is None or command[0] == "stop":
            break
        if command[0] == "primary":
            state.retarget_primary(int(command[1]))
    stop.set()
    listener.close()
    state.close_ship_socket()
    try:
        status_send.send(("stopped",))
    except (BrokenPipeError, OSError):  # pragma: no cover - parent gone
        pass


# ----------------------------------------------------------------------
# Seeding
# ----------------------------------------------------------------------
def seed_shards(
    directory: str | Path,
    ids: Sequence[int],
    vectors: np.ndarray,
    attrs: Sequence[float],
    *,
    num_shards: int,
    index_factory: Callable[[np.ndarray, np.ndarray, np.ndarray], object],
) -> list[float]:
    """Partition data into per-shard durability directories.

    Splits the attribute domain at quantiles exactly like
    :meth:`~repro.service.router.RangeShardedService.build` (same
    boundary and assignment code), builds one index per shard, and
    writes each under ``<directory>/shard-<i>`` with an initial
    snapshot, plus a ``cluster.json`` manifest recording the
    boundaries.  A :class:`ClusterSupervisor` then brings the cluster
    up from the directory alone.

    Returns:
        The attribute boundaries (``num_shards - 1`` split points,
        fewer if quantiles collapsed).
    """
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    ids = np.asarray(ids, dtype=np.int64)
    vectors = np.asarray(vectors, dtype=np.float64)
    attrs = np.asarray(attrs, dtype=np.float64)
    boundaries = quantile_boundaries(attrs, num_shards)
    assignment = np.searchsorted(boundaries, attrs, side="right")
    for number in range(len(boundaries) + 1):
        members = assignment == number
        if not members.any():
            raise ValueError(
                f"shard {number} would be empty; lower num_shards "
                "(attribute mass is too concentrated)"
            )
        index = index_factory(ids[members], vectors[members], attrs[members])
        service = IndexService(
            index, wal_dir=directory / f"shard-{number}"
        )
        service.close()
    manifest = {
        "boundaries": [float(b) for b in boundaries],
        "num_shards": len(boundaries) + 1,
    }
    with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle)
    return [float(b) for b in boundaries]


# ----------------------------------------------------------------------
# Supervision
# ----------------------------------------------------------------------
class _NodeHandle:
    """Parent-side handle on one node process and its private pipes."""

    __slots__ = ("role", "shard", "replica", "process", "ctrl_send", "status_recv", "port", "alive")

    def __init__(self, role, shard, replica, process, ctrl_send, status_recv):
        self.role = role
        self.shard = shard
        self.replica = replica
        self.process = process
        self.ctrl_send = ctrl_send
        self.status_recv = status_recv
        self.port: int | None = None
        self.alive = False

    def shutdown_pipes(self) -> None:
        """Close this node's parent-side pipe ends."""
        for conn in (self.ctrl_send, self.status_recv):
            try:
                conn.close()
            except OSError:  # pragma: no cover - already closed
                pass


class ClusterSupervisor:
    """Spawn, watch, kill, and restart a cluster's node processes.

    Brings up one primary per shard directory (``shard-<i>`` under the
    cluster directory, as laid out by :func:`seed_shards`) plus
    ``replicas`` replica processes each, all on localhost ephemeral
    ports.  Every node gets a dedicated control/status pipe pair; kill
    methods deliver ``SIGKILL`` (chaos realism — no cleanup runs) and
    restart methods re-run the node's catch-up-from-durable-state path.

    Args:
        directory: The cluster directory (``cluster.json`` + shard
            subdirectories).
        replicas: Replica processes per shard.
        start_method: Multiprocessing start method; default prefers
            ``fork``.
        ready_timeout_s: How long to wait for a node's ready handshake.
        control: Run a self-tuning :class:`~repro.control.ControlDaemon`
            inside every primary (per-shard ``l_base`` feedback against
            a budget-recall probe; see :mod:`repro.control`).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        replicas: int = 1,
        start_method: str | None = None,
        ready_timeout_s: float = 60.0,
        control: bool = False,
    ) -> None:
        if replicas < 0:
            raise ValueError(f"replicas must be >= 0, got {replicas}")
        self.directory = Path(directory)
        manifest_path = self.directory / MANIFEST_NAME
        if not manifest_path.exists():
            raise NodeError(
                f"{self.directory}: no {MANIFEST_NAME}; run seed_shards first"
            )
        with open(manifest_path, encoding="utf-8") as handle:
            manifest = json.load(handle)
        self._boundaries = [float(b) for b in manifest["boundaries"]]
        self._num_shards = int(manifest["num_shards"])
        for number in range(self._num_shards):
            if not (self.directory / f"shard-{number}").is_dir():
                raise NodeError(
                    f"{self.directory}: missing shard-{number} directory"
                )
        self.replicas = int(replicas)
        self.control = bool(control)
        self._ready_timeout_s = float(ready_timeout_s)
        methods = multiprocessing.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._primaries: list[_NodeHandle | None] = [None] * self._num_shards
        self._replicas: list[list[_NodeHandle | None]] = [
            [None] * self.replicas for _ in range(self._num_shards)
        ]
        self._started = False

    # -- introspection -------------------------------------------------
    @property
    def boundaries(self) -> list[float]:
        """The cluster's attribute split points (from the manifest)."""
        return list(self._boundaries)

    @property
    def num_shards(self) -> int:
        """Number of attribute-range shards."""
        return self._num_shards

    def primary_port(self, shard: int) -> int:
        """The (last known) port of a shard's primary."""
        handle = self._primaries[shard]
        if handle is None or handle.port is None:
            raise NodeError(f"shard {shard} has no started primary")
        return handle.port

    def replica_ports(self, shard: int) -> list[int]:
        """Ports of a shard's currently-alive replicas."""
        return [
            handle.port
            for handle in self._replicas[shard]
            if handle is not None and handle.alive and handle.port is not None
        ]

    # -- lifecycle -----------------------------------------------------
    def start(self) -> None:
        """Bring up every primary, then every replica."""
        if self._started:
            raise NodeError("cluster already started")
        self._started = True
        try:
            for shard in range(self._num_shards):
                self._primaries[shard] = self._spawn_primary(shard)
            for shard in range(self._num_shards):
                for replica in range(self.replicas):
                    self._replicas[shard][replica] = self._spawn_replica(
                        shard, replica
                    )
        except BaseException:  # repro: noqa-R004 — cleanup then re-raise
            self.stop()
            raise

    def _spawn_primary(self, shard: int) -> _NodeHandle:
        wal_dir = self.directory / f"shard-{shard}"
        handle = self._spawn(
            "primary",
            shard,
            None,
            _primary_main,
            (shard, str(wal_dir), self.control),
            f"repro-cluster-p{shard}",
        )
        return handle

    def _spawn_replica(self, shard: int, replica: int) -> _NodeHandle:
        wal_dir = self.directory / f"shard-{shard}"
        handle = self._spawn(
            "replica",
            shard,
            replica,
            _replica_main,
            (shard, str(wal_dir), self.primary_port(shard)),
            f"repro-cluster-r{shard}.{replica}",
        )
        return handle

    def _spawn(self, role, shard, replica, target, args, name) -> _NodeHandle:
        ctrl_recv, ctrl_send = self._ctx.Pipe(duplex=False)
        status_recv, status_send = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=target,
            args=(*args, ctrl_recv, status_send),
            daemon=True,
            name=name,
        )
        process.start()
        # Close the child's ends in the parent (pool.py discipline): the
        # child's inherited copies of our ends are harmless.
        ctrl_recv.close()
        status_send.close()
        handle = _NodeHandle(role, shard, replica, process, ctrl_send, status_recv)
        self._await_ready(handle)
        return handle

    def _await_ready(self, handle: _NodeHandle) -> None:
        """Block until the node sends its ready handshake (port, seq)."""
        deadline = time.monotonic() + self._ready_timeout_s
        name = handle.process.name
        while True:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise NodeError(
                    f"{name} failed the ready handshake within "
                    f"{self._ready_timeout_s}s"
                )
            if handle.status_recv.poll(min(remaining, _POLL_S)):
                try:
                    message = handle.status_recv.recv()
                except (EOFError, OSError):
                    raise NodeError(
                        f"{name} died during startup "
                        f"(exitcode {handle.process.exitcode})"
                    )
                if message[0] == "ready":
                    handle.port = int(message[1])
                    handle.alive = True
                    return
            elif not handle.process.is_alive():
                raise NodeError(
                    f"{name} died during startup "
                    f"(exitcode {handle.process.exitcode})"
                )

    # -- chaos ---------------------------------------------------------
    def kill_primary(self, shard: int) -> None:
        """SIGKILL a shard's primary (no cleanup runs — chaos realism)."""
        self._kill(self._primaries[shard], f"shard {shard} primary")

    def kill_replica(self, shard: int, replica: int) -> None:
        """SIGKILL one of a shard's replicas."""
        self._kill(
            self._replicas[shard][replica],
            f"shard {shard} replica {replica}",
        )

    def _kill(self, handle: _NodeHandle | None, what: str) -> None:
        if handle is None or not handle.alive:
            raise NodeError(f"{what} is not running")
        handle.process.kill()
        handle.process.join(timeout=10.0)
        handle.alive = False
        handle.shutdown_pipes()

    def restart_primary(self, shard: int) -> int:
        """Respawn a shard's primary from durable state; retarget replicas.

        The new primary recovers from the newest snapshot plus the WAL
        tail (torn final lines from the kill are repaired on open), and
        every replica of the shard is told the new port so its ship
        loop reconnects there.

        Returns:
            The new primary's port.
        """
        old = self._primaries[shard]
        if old is not None and old.alive:
            raise NodeError(f"shard {shard} primary is still running")
        self._primaries[shard] = self._spawn_primary(shard)
        port = self.primary_port(shard)
        for handle in self._replicas[shard]:
            if handle is not None and handle.alive:
                try:
                    handle.ctrl_send.send(("primary", port))
                except (BrokenPipeError, OSError):  # pragma: no cover
                    pass
        return port

    def restart_replica(self, shard: int, replica: int) -> int:
        """Respawn one replica; it catches up from snapshot + stream.

        Returns:
            The new replica's port.
        """
        old = self._replicas[shard][replica]
        if old is not None and old.alive:
            raise NodeError(f"shard {shard} replica {replica} is still running")
        handle = self._spawn_replica(shard, replica)
        self._replicas[shard][replica] = handle
        return handle.port

    # -- shutdown ------------------------------------------------------
    def stop(self, *, timeout_s: float = 10.0) -> None:
        """Stop every node gracefully; terminate stragglers.  Idempotent."""
        handles = [h for h in self._primaries if h is not None]
        for per_shard in self._replicas:
            handles.extend(h for h in per_shard if h is not None)
        for handle in handles:
            if handle.alive:
                try:
                    handle.ctrl_send.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass
        deadline = time.monotonic() + timeout_s
        for handle in handles:
            if handle.alive:
                handle.process.join(
                    timeout=max(0.0, deadline - time.monotonic())
                )
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(timeout=1.0)
                handle.alive = False
            handle.shutdown_pipes()
        self._primaries = [None] * self._num_shards
        self._replicas = [
            [None] * self.replicas for _ in range(self._num_shards)
        ]

    def __enter__(self) -> "ClusterSupervisor":
        self.start()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False
