"""Cluster bench: replicated write/read throughput + a bitwise oracle gate.

Seeds a sharded cluster (:func:`~repro.cluster.node.seed_shards`),
brings it up under a :class:`~repro.cluster.node.ClusterSupervisor`,
and drives it through a :class:`~repro.cluster.coordinator.ClusterCoordinator`:

1. **write phase** — a deterministic mix of inserts and deletes routed
   to the shard primaries (reported as write QPS);
2. **sync** — block until every replica applied its primary's last
   write (reported as catch-up seconds);
3. **read phase** — scattered range queries served by replicas
   (reported as read QPS);
4. **oracle gate** — every answer is compared *bitwise* (ids and
   distances) against a single-process
   :class:`~repro.service.router.RangeShardedService` that applied the
   identical operation sequence.  Any mismatch fails the run: the
   cluster must be a transparent replacement for the in-process router.

``--chaos`` additionally SIGKILLs a replica mid-writes and a primary
between acknowledged writes, restarts both, and requires the oracle
gate to still hold — the CLI twin of the chaos tests.

Entry point: ``python -m repro cluster-bench [--smoke] [--chaos]``.
"""

from __future__ import annotations

import tempfile
import time
from typing import Sequence

import numpy as np

from ..service.router import RangeShardedService
from .coordinator import ClusterCoordinator
from .node import ClusterSupervisor, seed_shards

__all__ = ["ClusterBenchResult", "run_cluster_bench", "main"]

#: Index build profile shared by the cluster shards and the oracle.
BUILD = dict(num_subspaces=4, num_clusters=8, num_codewords=16, seed=0)


class ClusterBenchResult:
    """Throughput numbers plus the oracle-gate accounting.

    Attributes:
        write_qps: Acknowledged primary writes per second.
        sync_s: Seconds until every replica caught up after the writes.
        read_qps: Replica-served scattered queries per second.
        violations: Queries whose cluster answer was not bitwise equal
            to the single-process oracle's.
        ops: Total write operations acknowledged.
        queries: Total queries answered.
    """

    def __init__(self) -> None:
        self.write_qps = 0.0
        self.sync_s = 0.0
        self.read_qps = 0.0
        self.violations = 0
        self.ops = 0
        self.queries = 0


def _factory(ids, vectors, attrs):
    """Build one shard's index (shared by cluster seeding and oracle)."""
    from ..core import RangePQ

    return RangePQ.build(vectors, attrs, ids=ids, **BUILD)


def run_cluster_bench(
    *,
    n: int = 2000,
    dim: int = 16,
    num_shards: int = 3,
    replicas: int = 2,
    writes: int = 200,
    num_queries: int = 50,
    k: int = 10,
    seed: int = 0,
    chaos: bool = False,
    verbose: bool = True,
) -> ClusterBenchResult:
    """Run the replicated-cluster benchmark against its in-process oracle.

    The oracle is a :class:`RangeShardedService` built from the same
    seed data with the same factory and fed the same operation
    sequence, so after :meth:`~repro.cluster.coordinator.ClusterCoordinator.sync`
    every scattered query must match it bitwise.
    """
    rng = np.random.default_rng(seed)
    vectors = rng.standard_normal((n, dim))
    attrs = rng.random(n) * 100.0
    ids = np.arange(n, dtype=np.int64)

    # The identical deterministic op sequence both sides will apply.
    num_deletes = min(writes // 4, n // 2)
    delete_ids = rng.choice(ids, size=num_deletes, replace=False)
    num_inserts = writes - num_deletes
    insert_ids = np.arange(n, n + num_inserts, dtype=np.int64)
    insert_vectors = rng.standard_normal((num_inserts, dim))
    insert_attrs = rng.random(num_inserts) * 100.0
    operations: list[tuple] = [
        ("insert", int(insert_ids[i]), insert_vectors[i], float(insert_attrs[i]))
        for i in range(num_inserts)
    ]
    for oid in delete_ids:
        operations.append(("delete", int(oid)))
    rng.shuffle(operations)

    query_vectors = rng.standard_normal((num_queries, dim))
    query_ranges = np.sort(rng.random((num_queries, 2)) * 100.0, axis=1)

    result = ClusterBenchResult()
    with tempfile.TemporaryDirectory(prefix="repro-cluster-") as tempdir:
        seed_shards(
            tempdir, ids, vectors, attrs,
            num_shards=num_shards, index_factory=_factory,
        )
        with ClusterSupervisor(tempdir, replicas=replicas) as supervisor:
            coordinator = ClusterCoordinator(supervisor)

            chaos_at = len(operations) // 2
            started = time.monotonic()
            for position, op in enumerate(operations):
                if chaos and position == chaos_at:
                    # Kill a replica mid-stream and a primary between
                    # acknowledged writes; both must recover.
                    supervisor.kill_replica(0, 0)
                    supervisor.kill_primary(0)
                    supervisor.restart_primary(0)
                    supervisor.restart_replica(0, 0)
                if op[0] == "insert":
                    coordinator.insert(op[1], op[2], op[3])
                else:
                    coordinator.delete(op[1])
                result.ops += 1
            write_elapsed = time.monotonic() - started
            result.write_qps = result.ops / max(write_elapsed, 1e-9)

            started = time.monotonic()
            coordinator.sync(timeout_s=60.0)
            result.sync_s = time.monotonic() - started

            # The single-process oracle applies the same sequence.
            oracle = RangeShardedService.build(
                ids, vectors, attrs,
                num_shards=num_shards, index_factory=_factory,
            )
            for op in operations:
                if op[0] == "insert":
                    oracle.insert(op[1], op[2], op[3])
                else:
                    oracle.delete(op[1])

            started = time.monotonic()
            for i in range(num_queries):
                lo, hi = float(query_ranges[i][0]), float(query_ranges[i][1])
                got = coordinator.query(query_vectors[i], lo, hi, k)
                expected = oracle.query(query_vectors[i], lo, hi, k)
                result.queries += 1
                if not (
                    np.array_equal(expected.ids, got.ids)
                    and np.array_equal(expected.distances, got.distances)
                ):
                    result.violations += 1
            read_elapsed = time.monotonic() - started
            result.read_qps = result.queries / max(read_elapsed, 1e-9)
            coordinator.close()
            oracle.close()

    if verbose:
        print(
            f"cluster bench — n={n}, d={dim}, {num_shards} shards x "
            f"{replicas} replicas, {result.ops} writes, "
            f"{result.queries} queries, k={k}"
            + (", chaos on" if chaos else "")
        )
        print(f"  write                 {result.write_qps:10.1f} qps")
        print(f"  replica catch-up      {result.sync_s:10.3f} s")
        print(f"  read (replicas)       {result.read_qps:10.1f} qps")
        print(f"  oracle violations     {result.violations:10d}")
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI for the cluster bench; exit 1 on any bitwise oracle mismatch."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro cluster-bench",
        description=(
            "WAL-shipping replication bench: primaries + socket-fed "
            "replicas vs a single-process bitwise oracle."
        ),
    )
    parser.add_argument("--n", type=int, default=2000)
    parser.add_argument("--dim", type=int, default=16)
    parser.add_argument("--shards", type=int, default=3)
    parser.add_argument("--replicas", type=int, default=2)
    parser.add_argument("--writes", type=int, default=200)
    parser.add_argument("--queries", type=int, default=50)
    parser.add_argument("-k", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--chaos",
        action="store_true",
        help="SIGKILL + restart a replica and a primary mid-run",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI profile (n=500, 2 shards x 1 replica, 40 writes, "
        "12 queries); the oracle gate still applies",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.shards, args.replicas = 500, 2, 1
        args.writes, args.queries = 40, 12
    result = run_cluster_bench(
        n=args.n,
        dim=args.dim,
        num_shards=args.shards,
        replicas=args.replicas,
        writes=args.writes,
        num_queries=args.queries,
        k=args.k,
        seed=args.seed,
        chaos=args.chaos,
    )
    if result.violations:
        print(f"FAIL: {result.violations} bitwise oracle mismatch(es)")
        return 1
    print("OK: every scattered query matched the single-process oracle bitwise")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
