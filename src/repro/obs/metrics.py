"""Process-wide metrics: counters, gauges, and fixed-bucket histograms.

The registry is cheap enough to stay enabled in production: recording one
histogram sample is a lock acquisition, a bisect over ~30 bucket bounds,
and a few float adds.  ``REPRO_METRICS=0`` (or ``false``/``no``/``off``)
disables recording through the *gated* surface — registry-created
instruments and the :func:`repro.obs.timers.phase` helper — without
changing a single query result: instrumented code still runs the exact
same kernels in the exact same order, it just skips the bookkeeping.

Standalone instruments constructed with ``gated=False`` always record;
:func:`repro.eval.latency.measure_latencies` uses one as its sample store
so latency reports work regardless of the environment gate.
"""

from __future__ import annotations

import os
import threading
from bisect import bisect_left
from typing import Iterable

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramWindow",
    "WindowStats",
    "MetricsRegistry",
    "REGISTRY",
    "metrics_enabled",
    "set_metrics_enabled",
    "counter",
    "gauge",
    "histogram",
]

_FALSY = ("0", "false", "no", "off")


def _env_enabled() -> bool:
    return os.environ.get("REPRO_METRICS", "1").strip().lower() not in _FALSY


#: Process-wide recording gate (default on; ``REPRO_METRICS=0`` turns off).
_ENABLED = _env_enabled()

#: Geometric latency buckets: 1 µs up to ~67 s, doubling each step.  The
#: final implicit bucket is +inf (overflow samples clamp to the observed
#: max in percentile estimates).
DEFAULT_LATENCY_BUCKETS_MS: tuple[float, ...] = tuple(
    0.001 * (2.0 ** i) for i in range(27)
)


def metrics_enabled() -> bool:
    """Whether gated instruments currently record samples."""
    return _ENABLED


def set_metrics_enabled(value: bool | None) -> None:
    """Override the recording gate (``None`` re-reads ``REPRO_METRICS``).

    Intended for tests; production code should rely on the environment
    variable read at import.
    """
    global _ENABLED
    _ENABLED = _env_enabled() if value is None else bool(value)


class Counter:
    """A monotonically increasing counter.

    Args:
        name: Exposition name (dot-separated, e.g. ``"wal.appends"``).
        gated: Honor the ``REPRO_METRICS`` gate (registry default).
    """

    __slots__ = ("name", "_gated", "_value", "_lock")

    def __init__(self, name: str, *, gated: bool = True) -> None:
        self.name = name
        self._gated = gated
        self._value = 0
        self._lock = threading.Lock()

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (default 1) to the counter."""
        if self._gated and not _ENABLED:
            return
        with self._lock:
            self._value += amount

    @property
    def value(self) -> int:
        """Current count."""
        return self._value

    def reset(self) -> None:
        """Zero the counter (tests / registry reset)."""
        with self._lock:
            self._value = 0


class Gauge:
    """A value that can go up and down (queue depths, hit rates).

    Args:
        name: Exposition name.
        gated: Honor the ``REPRO_METRICS`` gate (registry default).
    """

    __slots__ = ("name", "_gated", "_value", "_lock")

    def __init__(self, name: str, *, gated: bool = True) -> None:
        self.name = name
        self._gated = gated
        self._value = 0.0
        self._lock = threading.Lock()

    def set(self, value: float) -> None:
        """Replace the gauge value."""
        if self._gated and not _ENABLED:
            return
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (default 1) to the gauge."""
        if self._gated and not _ENABLED:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount`` (default 1) from the gauge."""
        self.inc(-amount)

    @property
    def value(self) -> float:
        """Current gauge value."""
        return self._value

    def reset(self) -> None:
        """Zero the gauge (tests / registry reset)."""
        with self._lock:
            self._value = 0.0


class Histogram:
    """Fixed-bucket histogram with exact count/sum/min/max.

    Samples land in the first bucket whose upper bound is >= the value;
    samples beyond the last bound land in an implicit +inf bucket.
    Percentiles are estimated by linear interpolation inside the matched
    bucket and clamped to the observed ``[min, max]`` — the estimate is
    monotone in the requested quantile, so ``p50 <= p95 <= p99 <= max``
    always holds.

    Args:
        name: Exposition name (conventionally ``*_ms`` for latencies).
        buckets_ms: Ascending upper bounds; defaults to the geometric
            latency ladder :data:`DEFAULT_LATENCY_BUCKETS_MS`.
        gated: Honor the ``REPRO_METRICS`` gate (registry default).
    """

    __slots__ = (
        "name",
        "_gated",
        "_bounds",
        "_counts",
        "_count",
        "_sum",
        "_min",
        "_max",
        "_lock",
        "_own_window",
    )

    def __init__(
        self,
        name: str,
        *,
        buckets_ms: Iterable[float] | None = None,
        gated: bool = True,
    ) -> None:
        bounds = tuple(
            sorted(buckets_ms)
            if buckets_ms is not None
            else DEFAULT_LATENCY_BUCKETS_MS
        )
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self._gated = gated
        self._bounds = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +inf bucket
        self._count = 0
        self._sum = 0.0
        self._min = float("inf")
        self._max = 0.0
        self._lock = threading.Lock()
        self._own_window: HistogramWindow | None = None

    @property
    def bounds(self) -> tuple[float, ...]:
        """The finite bucket upper bounds, ascending."""
        return self._bounds

    @property
    def count(self) -> int:
        """Exact number of recorded samples."""
        return self._count

    @property
    def sum(self) -> float:
        """Exact sum of recorded samples."""
        return self._sum

    @property
    def min(self) -> float:
        """Smallest recorded sample (0.0 when empty)."""
        return self._min if self._count else 0.0

    @property
    def max(self) -> float:
        """Largest recorded sample (0.0 when empty)."""
        return self._max

    @property
    def mean(self) -> float:
        """Exact mean of recorded samples (0.0 when empty)."""
        return self._sum / self._count if self._count else 0.0

    def observe(self, value: float) -> None:
        """Record one sample."""
        if self._gated and not _ENABLED:
            return
        value = float(value)
        slot = bisect_left(self._bounds, value)
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._sum += value
            if value < self._min:
                self._min = value
            if value > self._max:
                self._max = value

    def bucket_counts(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus-style.

        The final pair has bound ``inf`` and equals :attr:`count`.
        """
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        running = 0
        for bound, bucket in zip(self._bounds, counts):
            running += bucket
            out.append((bound, running))
        out.append((float("inf"), running + counts[-1]))
        return out

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (``0 <= q <= 100``)."""
        with self._lock:
            counts = list(self._counts)
            count = self._count
            low, high = self._min, self._max
        return _interpolated_percentile(
            self._bounds, counts, count, low, high, q
        )

    def window(self) -> "HistogramWindow":
        """A fresh rolling-delta view over this histogram.

        Each consumer creates its own window; independent windows never
        disturb each other or the cumulative view.  The window's first
        :meth:`HistogramWindow.take` covers samples recorded *after* this
        call.
        """
        return HistogramWindow(self)

    def window_percentiles(
        self, qs: Iterable[float] = (50.0, 95.0, 99.0)
    ) -> "WindowStats":
        """Percentiles of the samples recorded since the previous call.

        A rolling snapshot/delta view: unlike :meth:`percentile` — which
        aggregates the histogram's whole lifetime — this reads only the
        traffic since the last ``window_percentiles`` call on this
        histogram, so a controller sees *recent* p99, not an average
        diluted by hours of old samples.  Uses one internal window per
        histogram; components that must not share a cursor should hold
        their own :meth:`window`.
        """
        with self._lock:
            if self._own_window is None:
                self._own_window = HistogramWindow(self, _locked=True)
        return self._own_window.take(qs)

    def reset(self) -> None:
        """Drop all samples (tests / registry reset)."""
        with self._lock:
            self._counts = [0] * (len(self._bounds) + 1)
            self._count = 0
            self._sum = 0.0
            self._min = float("inf")
            self._max = 0.0


def _interpolated_percentile(
    bounds: tuple[float, ...],
    counts: list[int],
    count: int,
    low: float,
    high: float,
    q: float,
) -> float:
    """Shared percentile estimate over one set of bucket counts.

    Linear interpolation inside the matched bucket, clamped to
    ``[low, high]``; used by both the cumulative and windowed views so
    the two stay comparable.
    """
    if count == 0:
        return 0.0
    rank = (q / 100.0) * count
    cumulative = 0
    for slot, bucket in enumerate(counts):
        if bucket == 0:
            continue
        upper = bounds[slot] if slot < len(bounds) else high
        lower = bounds[slot - 1] if slot > 0 else 0.0
        if cumulative + bucket >= rank:
            fraction = (rank - cumulative) / bucket
            value = lower + (upper - lower) * fraction
            return min(max(value, low), high)
        cumulative += bucket
    return high


class WindowStats:
    """One window's worth of histogram traffic (plain data).

    Attributes:
        count: Samples recorded inside the window.
        sum: Sum of those samples.
        percentiles: Requested quantile → estimated value (0.0 when the
            window is empty).
    """

    __slots__ = ("count", "sum", "percentiles")

    def __init__(
        self, count: int, total: float, percentiles: dict[float, float]
    ) -> None:
        self.count = count
        self.sum = total
        self.percentiles = percentiles

    @property
    def mean(self) -> float:
        """Mean of the window's samples (0.0 when empty)."""
        return self.sum / self.count if self.count else 0.0

    def p(self, q: float) -> float:
        """The estimate for quantile ``q`` (must have been requested)."""
        return self.percentiles[float(q)]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(
            f"p{quantile:g}={value:.3f}"
            for quantile, value in self.percentiles.items()
        )
        return f"WindowStats(count={self.count}, {inner})"


class HistogramWindow:
    """Rolling delta cursor over one :class:`Histogram`.

    Remembers the histogram's bucket counts at the previous
    :meth:`take`; each ``take`` returns statistics of only the samples
    recorded since then, and advances the cursor.  If the underlying
    histogram was reset (tests, fork) the deltas would go negative; the
    window detects that, re-baselines, and reports an empty window for
    that one take instead of garbage.
    """

    __slots__ = ("_histogram", "_counts", "_count", "_sum")

    def __init__(self, hist: Histogram, *, _locked: bool = False) -> None:
        self._histogram = hist
        if _locked:
            self._counts = list(hist._counts)
            self._count = hist._count
            self._sum = hist._sum
        else:
            with hist._lock:
                self._counts = list(hist._counts)
                self._count = hist._count
                self._sum = hist._sum

    def take(
        self, qs: Iterable[float] = (50.0, 95.0, 99.0)
    ) -> WindowStats:
        """Stats of the samples since the previous take; advances the cursor."""
        hist = self._histogram
        with hist._lock:
            counts = list(hist._counts)
            count = hist._count
            total = hist._sum
            high = hist._max
        delta = [now - before for now, before in zip(counts, self._counts)]
        delta_count = count - self._count
        delta_sum = total - self._sum
        self._counts = counts
        self._count = count
        self._sum = total
        if delta_count < 0 or any(d < 0 for d in delta):
            # Underlying histogram was reset mid-window: re-baseline.
            return WindowStats(0, 0.0, {float(q): 0.0 for q in qs})
        percentiles = {
            float(q): _interpolated_percentile(
                hist.bounds, delta, delta_count, 0.0, high, float(q)
            )
            for q in qs
        }
        return WindowStats(delta_count, delta_sum, percentiles)


class MetricsRegistry:
    """Name-keyed store of instruments with get-or-create semantics.

    One process-wide instance lives at :data:`REGISTRY`; modules hold
    references to the instruments they record into (resolving a name is a
    dict lookup under a lock, so hot paths resolve once at import).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        """Get or create the counter called ``name``."""
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = Counter(name)
                self._counters[name] = instrument
            return instrument

    def gauge(self, name: str) -> Gauge:
        """Get or create the gauge called ``name``."""
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = Gauge(name)
                self._gauges[name] = instrument
            return instrument

    def histogram(
        self, name: str, *, buckets_ms: Iterable[float] | None = None
    ) -> Histogram:
        """Get or create the histogram called ``name``."""
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = Histogram(name, buckets_ms=buckets_ms)
                self._histograms[name] = instrument
            return instrument

    def reset(self) -> None:
        """Zero every instrument, keeping the instrument objects alive.

        Held references stay valid — essential because hot paths cache
        instrument handles at import time.
        """
        with self._lock:
            instruments = (
                list(self._counters.values())
                + list(self._gauges.values())
                + list(self._histograms.values())
            )
        for instrument in instruments:
            instrument.reset()

    def snapshot(self) -> dict:
        """A plain-data view of every instrument (for JSON exposition)."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        out: dict = {"counters": {}, "gauges": {}, "histograms": {}}
        for name, instrument in sorted(counters.items()):
            out["counters"][name] = instrument.value
        for name, instrument in sorted(gauges.items()):
            out["gauges"][name] = instrument.value
        for name, hist in sorted(histograms.items()):
            out["histograms"][name] = {
                "count": hist.count,
                "sum": hist.sum,
                "min": hist.min,
                "max": hist.max,
                "mean": hist.mean,
                "p50": hist.percentile(50),
                "p95": hist.percentile(95),
                "p99": hist.percentile(99),
                "buckets": [
                    [bound, count] for bound, count in hist.bucket_counts()
                ],
            }
        return out


#: The process-wide registry all gated instrumentation records into.
REGISTRY = MetricsRegistry()


def _reinit_after_fork() -> None:
    """Give a forked child a fresh registry state.

    The forking thread may be holding any instrument's lock mid-record;
    in the child that lock would stay acquired forever (its owner thread
    does not exist there).  Every lock is therefore *replaced* — plain
    assignment, never acquired — before the values are zeroed, so the
    child starts with a clean registry while instrument references
    cached at import time stay valid in both processes.  The tracing
    span stack inherited across the fork is dropped for the same reason:
    it belongs to the parent's trace tree.
    """
    REGISTRY._lock = threading.Lock()
    for group in (
        REGISTRY._counters,
        REGISTRY._gauges,
        REGISTRY._histograms,
    ):
        for instrument in group.values():
            instrument._lock = threading.Lock()
            instrument.reset()
    from .tracing import _reset_context

    _reset_context()


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reinit_after_fork)


def counter(name: str) -> Counter:
    """Get or create ``name`` in the process-wide registry."""
    return REGISTRY.counter(name)


def gauge(name: str) -> Gauge:
    """Get or create ``name`` in the process-wide registry."""
    return REGISTRY.gauge(name)


def histogram(
    name: str, *, buckets_ms: Iterable[float] | None = None
) -> Histogram:
    """Get or create ``name`` in the process-wide registry."""
    return REGISTRY.histogram(name, buckets_ms=buckets_ms)
