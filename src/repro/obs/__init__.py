"""repro.obs — zero-dependency observability: metrics + query tracing.

Three small pieces, designed to stay enabled in production:

* :mod:`repro.obs.metrics` — a process-wide :class:`MetricsRegistry` of
  counters, gauges, and fixed-bucket latency histograms (p50/p95/p99).
  ``REPRO_METRICS=0`` disables recording; query results are bitwise
  identical either way.
* :mod:`repro.obs.tracing` — per-query trace spans over a context-local
  span stack; a :func:`span` call-site costs one ``ContextVar.get()``
  when no trace is active.
* :mod:`repro.obs.timers` — :func:`phase`, the single sanctioned timing
  primitive for hot and serving paths (lint rule R008 enforces this).

Exposition lives in :mod:`repro.obs.exposition` (Prometheus text + JSON,
``python -m repro metrics-dump [--smoke]``).  See
``docs/observability.md`` for the metric names and span taxonomy.
"""

from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    REGISTRY,
    Counter,
    Gauge,
    Histogram,
    HistogramWindow,
    MetricsRegistry,
    WindowStats,
    counter,
    gauge,
    histogram,
    metrics_enabled,
    set_metrics_enabled,
)
from .timers import PhaseTimer, phase
from .tracing import (
    Span,
    active_span,
    format_span_tree,
    span,
    trace,
    validate_span_tree,
)

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MS",
    "REGISTRY",
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramWindow",
    "MetricsRegistry",
    "WindowStats",
    "counter",
    "gauge",
    "histogram",
    "metrics_enabled",
    "set_metrics_enabled",
    "PhaseTimer",
    "phase",
    "Span",
    "active_span",
    "format_span_tree",
    "span",
    "trace",
    "validate_span_tree",
]
