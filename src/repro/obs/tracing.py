"""Per-query trace spans over a context-local span stack.

A *trace* is opened explicitly (``with trace("query") as root:``); every
:func:`span` opened while a trace is active attaches a child to the
innermost open span of the **current context** — ``contextvars`` gives
each thread its own stack, so concurrent queries never interleave their
trees.  When no trace is active, :func:`span` returns a shared no-op
context manager whose entire cost is one ``ContextVar.get()`` — cheap
enough to leave the span call-sites permanently in the hot paths.

Span names follow the taxonomy documented in ``docs/observability.md``:
``plan`` > ``decompose`` for query planning, then ``rank`` / ``table`` /
``fetch`` / ``adc_scan`` / ``rerank`` for SearchByCCenters, and ``merge``
for scatter-gather assembly.
"""

from __future__ import annotations

import time
from contextvars import ContextVar

__all__ = [
    "Span",
    "trace",
    "span",
    "active_span",
    "format_span_tree",
    "validate_span_tree",
]

#: The innermost open span of the current context (None = tracing off).
_ACTIVE: ContextVar["Span | None"] = ContextVar("repro_obs_span", default=None)


class Span:
    """One node of a trace tree: a named, timed interval with children."""

    __slots__ = ("name", "start_s", "end_s", "children")

    def __init__(self, name: str) -> None:
        self.name = name
        self.start_s = time.perf_counter()
        self.end_s: float | None = None
        self.children: list["Span"] = []

    @property
    def closed(self) -> bool:
        """Whether the span's interval has ended."""
        return self.end_s is not None

    @property
    def duration_ms(self) -> float:
        """Elapsed milliseconds (to now, while the span is still open)."""
        end = self.end_s if self.end_s is not None else time.perf_counter()
        return (end - self.start_s) * 1000.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "closed" if self.closed else "open"
        return f"Span({self.name!r}, {self.duration_ms:.3f} ms, {state})"


class _NullSpan:
    """Shared no-op context manager returned when no trace is active."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc_info) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _LiveSpan:
    """Context manager attaching one child span to the active stack."""

    __slots__ = ("_name", "_span", "_token")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> Span:
        parent = _ACTIVE.get()
        self._span = Span(self._name)
        if parent is not None:
            parent.children.append(self._span)
        self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span.end_s = time.perf_counter()
        _ACTIVE.reset(self._token)
        return False


class trace:
    """Open a trace: activates a root span for the current context.

    Usage::

        with trace("query") as root:
            index.query(...)
        print(format_span_tree(root))
    """

    __slots__ = ("_name", "_span", "_token")

    def __init__(self, name: str) -> None:
        self._name = name

    def __enter__(self) -> Span:
        self._span = Span(self._name)
        self._token = _ACTIVE.set(self._span)
        return self._span

    def __exit__(self, *exc_info) -> bool:
        self._span.end_s = time.perf_counter()
        _ACTIVE.reset(self._token)
        return False


def span(name: str):
    """A context manager for one child span (no-op when tracing is off)."""
    if _ACTIVE.get() is None:
        return _NULL_SPAN
    return _LiveSpan(name)


def _reset_context() -> None:
    """Drop the span stack inherited across a fork (child-side hook).

    A child forked mid-trace would otherwise attach its spans to the
    parent's tree through the copied ContextVar.  Called by the
    ``os.register_at_fork`` handler in :mod:`repro.obs.metrics`.
    """
    _ACTIVE.set(None)


def active_span() -> Span | None:
    """The innermost open span of the current context, if any."""
    return _ACTIVE.get()


def format_span_tree(root: Span, *, indent: int = 0) -> str:
    """Render a span tree as an indented, one-span-per-line string."""
    lines = [f"{'  ' * indent}{root.name:<12} {root.duration_ms:9.3f} ms"]
    for child in root.children:
        lines.append(format_span_tree(child, indent=indent + 1))
    return "\n".join(lines)


def validate_span_tree(root: Span) -> list[str]:
    """Check a finished trace for well-formedness; returns the problems.

    A well-formed tree has every span closed, every child's interval
    contained in its parent's (up to a small clock tolerance), and
    children in chronological order.
    """
    problems: list[str] = []
    _validate(root, None, problems)
    return problems


_TOLERANCE_S = 1e-6


def _validate(node: Span, parent: Span | None, problems: list[str]) -> None:
    if not node.closed:
        problems.append(f"span {node.name!r} was never closed")
        return
    if node.end_s is not None and node.end_s + _TOLERANCE_S < node.start_s:
        problems.append(f"span {node.name!r} ends before it starts")
    if parent is not None and parent.closed:
        if node.start_s + _TOLERANCE_S < parent.start_s or (
            node.end_s is not None
            and parent.end_s is not None
            and node.end_s > parent.end_s + _TOLERANCE_S
        ):
            problems.append(
                f"span {node.name!r} escapes its parent {parent.name!r}"
            )
    previous_start = None
    for child in node.children:
        if previous_start is not None and child.start_s + _TOLERANCE_S < (
            previous_start
        ):
            problems.append(
                f"children of {node.name!r} are out of chronological order"
            )
        previous_start = child.start_s
        _validate(child, node, problems)
