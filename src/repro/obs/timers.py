"""The phase timer: one call-site for wall time, metrics, and tracing.

``with phase("rank", metric=_RANK_MS) as timer:`` measures the block,
opens a trace span named ``"rank"`` when a trace is active, records the
elapsed milliseconds into ``metric`` when metrics are enabled, and always
leaves the exact measurement in ``timer.ms`` for callers that feed
:class:`~repro.core.results.QueryStats` — so the per-query stats contract
is identical whether the observability layer is on or off.

This is the only sanctioned way to time a hot or serving path (lint rule
R008 flags raw ``time.time()`` / ``time.perf_counter()`` there).
"""

from __future__ import annotations

import time

from .metrics import Histogram, histogram, metrics_enabled
from .tracing import span

__all__ = ["PhaseTimer", "phase"]


class PhaseTimer:
    """Context manager timing one phase (see module docstring).

    Attributes:
        ms: Elapsed milliseconds, set on exit (0.0 before).
    """

    __slots__ = ("_name", "_metric", "_span", "_start", "ms")

    def __init__(self, name: str, metric: Histogram | str | None) -> None:
        self._name = name
        self._metric = metric
        self.ms = 0.0

    def __enter__(self) -> "PhaseTimer":
        self._span = span(self._name)
        self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info) -> bool:
        self.ms = (time.perf_counter() - self._start) * 1000.0
        self._span.__exit__(*exc_info)
        metric = self._metric
        if metric is not None and metrics_enabled():
            if isinstance(metric, str):
                metric = histogram(metric)
            metric.observe(self.ms)
        return False


def phase(name: str, *, metric: Histogram | str | None = None) -> PhaseTimer:
    """Time a block: span ``name`` + optional histogram + exact ``.ms``.

    Args:
        name: Span name (one of the taxonomy names on query paths).
        metric: Histogram instrument or registry name to record into;
            ``None`` skips metrics (pure timing + tracing).
    """
    return PhaseTimer(name, metric)
