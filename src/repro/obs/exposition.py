"""Metrics exposition: Prometheus-style text, JSON, and the CLI smoke run.

``python -m repro metrics-dump`` renders the process-wide registry in both
formats.  With ``--smoke`` it first drives a tiny but complete serving
workload in-process — WAL-backed service with fsync, combined reads, a
batch, writes, maintenance, a snapshot — then dumps, and exits non-zero
unless the query histograms, WAL fsync timings, and cache hit-rates are
all populated.  CI runs that as the observability gate.
"""

from __future__ import annotations

import json
import re
from typing import Sequence

from .metrics import REGISTRY, MetricsRegistry

__all__ = ["to_prometheus", "to_json", "run_smoke_workload", "main"]

_NAME_SANITIZER = re.compile(r"[^a-zA-Z0-9_]")


def _prom_name(name: str) -> str:
    return "repro_" + _NAME_SANITIZER.sub("_", name)


def _prom_float(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry | None = None) -> str:
    """Render a registry in the Prometheus text exposition format."""
    snapshot = (registry or REGISTRY).snapshot()
    lines: list[str] = []
    for name, value in snapshot["counters"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, value in snapshot["gauges"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {_prom_float(value)}")
    for name, data in snapshot["histograms"].items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} histogram")
        for bound, count in data["buckets"]:
            lines.append(
                f'{prom}_bucket{{le="{_prom_float(bound)}"}} {count}'
            )
        lines.append(f"{prom}_sum {_prom_float(data['sum'])}")
        lines.append(f"{prom}_count {data['count']}")
    return "\n".join(lines) + "\n"


def to_json(registry: MetricsRegistry | None = None) -> str:
    """Render a registry as an indented JSON document."""
    return json.dumps((registry or REGISTRY).snapshot(), indent=2)


def run_smoke_workload(*, seed: int = 0) -> None:
    """Drive one tiny end-to-end serving workload to populate the registry.

    Exercises every instrumented surface: combined single reads, a caller
    batch, WAL-durable writes with fsync, a rebuild-triggering delete
    storm, maintenance (cache hit-rate gauges), and a snapshot.
    """
    import tempfile

    import numpy as np

    from ..core import RangePQPlus
    from ..service import AdmissionController, IndexService

    rng = np.random.default_rng(seed)
    vectors = rng.normal(size=(400, 16))
    attrs = rng.integers(0, 100, size=400).astype(float)
    index = RangePQPlus.build(
        vectors, attrs, num_subspaces=4, num_clusters=10, num_codewords=32,
        seed=seed,
    )
    with tempfile.TemporaryDirectory() as wal_dir:
        service = IndexService(
            index,
            wal_dir=wal_dir,
            fsync=True,
            admission=AdmissionController(max_concurrent=8),
            snapshot_every=16,
        )
        for i in range(24):
            service.query(vectors[i], 10.0, 80.0, k=5)
        service.query_batch(
            vectors[:16],
            [(10.0, 80.0)] * 8 + [(0.0, 100.0)] * 8,
            k=5,
        )
        base = 10_000
        for i in range(24):
            service.insert(base + i, vectors[i], float(attrs[i]))
        # Enough deletes to trip the lazy-deletion rebuild trigger
        # (2 * invalid > size) so rebuild_ms is guaranteed to populate.
        for i in range(300):
            service.delete(int(i))
        service.run_maintenance(audit=False)
        service.snapshot()
        service.close()


#: Metrics the smoke run must leave non-empty (name, kind) — the
#: acceptance gate behind ``metrics-dump --smoke``.
_SMOKE_REQUIRED: tuple[tuple[str, str], ...] = (
    ("service.read_latency_ms", "histograms"),
    ("service.write_latency_ms", "histograms"),
    ("query.fetch_ms", "histograms"),
    ("query.adc_scan_ms", "histograms"),
    ("wal.append_ms", "histograms"),
    ("wal.fsync_ms", "histograms"),
    ("service.rebuild_ms", "histograms"),
    ("cache.table.hit_rate", "gauges"),
)


def _check_smoke(registry: MetricsRegistry) -> list[str]:
    snapshot = registry.snapshot()
    missing: list[str] = []
    for name, kind in _SMOKE_REQUIRED:
        data = snapshot[kind].get(name)
        if kind == "histograms":
            if not data or data["count"] == 0:
                missing.append(f"{name} (empty histogram)")
        elif name not in snapshot[kind]:
            missing.append(f"{name} (absent gauge)")
    return missing


def main(argv: Sequence[str] | None = None) -> int:
    """CLI for ``python -m repro metrics-dump [--smoke] [--json]``."""
    import argparse

    parser = argparse.ArgumentParser(
        description="Dump the process-wide metrics registry.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="run a tiny serving workload first and fail unless the core "
        "query/WAL/cache metrics are populated (the CI gate)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print JSON only (default prints both formats)",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        run_smoke_workload()
    if not args.json:
        print(to_prometheus())
        print()
    print(to_json())
    if args.smoke:
        missing = _check_smoke(REGISTRY)
        if missing:
            print("\nFAIL: smoke run left metrics unpopulated:")
            for name in missing:
                print(f"  - {name}")
            return 1
        print("\nsmoke metrics: OK")
    return 0
