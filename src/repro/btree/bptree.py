"""A B+-tree keyed by ``(attr, oid)`` — the baselines' attribute index.

The paper's baselines rely on a secondary attribute index: Milvus "locates
relevant objects via binary search or B-tree indices" and VBase "creates an
index for attributes to expedite filtering".  The simple
:class:`~repro.baselines.AttributeDirectory` models that with one sorted
Python list (``O(n)`` memmove per update); this module provides the real
thing — an order-``t`` B+-tree with:

* ``O(log n)`` insert and delete with node split / borrow / merge,
* leaf-level linking for ``O(log n + output)`` range scans,
* subtree counts for ``O(log n)`` range counting and rank queries.

:class:`BPlusAttributeDirectory` exposes the same interface as
``AttributeDirectory`` so either can back a baseline; a differential test
suite keeps the two in lockstep.
"""

from __future__ import annotations

import bisect
import math
from typing import Iterator

import numpy as np

__all__ = ["BPlusTree", "BPlusAttributeDirectory"]

#: Minimum number of keys per node is ORDER, maximum is 2*ORDER.
DEFAULT_ORDER = 16


class _Leaf:
    __slots__ = ("keys", "next")

    def __init__(self) -> None:
        self.keys: list[tuple[float, int]] = []
        self.next: _Leaf | None = None

    @property
    def is_leaf(self) -> bool:
        return True

    def count(self) -> int:
        return len(self.keys)


class _Internal:
    __slots__ = ("separators", "children", "counts")

    def __init__(self) -> None:
        #: separators[i] = smallest key in children[i + 1]'s subtree
        self.separators: list[tuple[float, int]] = []
        self.children: list[_Leaf | _Internal] = []
        self.counts: list[int] = []  # cached subtree key counts

    @property
    def is_leaf(self) -> bool:
        return False

    def count(self) -> int:
        return sum(self.counts)

    def child_index(self, key: tuple[float, int]) -> int:
        return bisect.bisect_right(self.separators, key)


class BPlusTree:
    """Order-``t`` B+-tree over unique ``(attr, oid)`` keys.

    Args:
        order: Minimum keys per node (``t``); nodes hold at most ``2t``.
    """

    def __init__(self, *, order: int = DEFAULT_ORDER) -> None:
        if order < 2:
            raise ValueError(f"order must be >= 2, got {order}")
        self.order = order
        self._root: _Leaf | _Internal = _Leaf()
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: tuple[float, int]) -> bool:
        leaf = self._find_leaf(key)
        index = bisect.bisect_left(leaf.keys, key)
        return index < len(leaf.keys) and leaf.keys[index] == key

    def _find_leaf(self, key: tuple[float, int]) -> _Leaf:
        node = self._root
        while not node.is_leaf:
            node = node.children[node.child_index(key)]
        return node

    # ------------------------------------------------------------------
    # Insertion
    # ------------------------------------------------------------------
    def insert(self, attr: float, oid: int) -> None:
        """Insert a key (KeyError if already present)."""
        key = (float(attr), oid)
        split = self._insert(self._root, key)
        if split is not None:
            separator, sibling = split
            root = _Internal()
            root.separators = [separator]
            root.children = [self._root, sibling]
            root.counts = [self._root.count(), sibling.count()]
            self._root = root
        self._size += 1

    def _insert(self, node, key):
        """Insert into a subtree; returns (separator, new_sibling) on split."""
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                raise KeyError(f"key {key} already present")
            node.keys.insert(index, key)
            if len(node.keys) <= 2 * self.order:
                return None
            sibling = _Leaf()
            mid = len(node.keys) // 2
            sibling.keys = node.keys[mid:]
            node.keys = node.keys[:mid]
            sibling.next = node.next
            node.next = sibling
            return sibling.keys[0], sibling
        index = node.child_index(key)
        split = self._insert(node.children[index], key)
        node.counts[index] = node.children[index].count()
        if split is None:
            return None
        separator, sibling = split
        node.separators.insert(index, separator)
        node.children.insert(index + 1, sibling)
        node.counts[index] = node.children[index].count()
        node.counts.insert(index + 1, sibling.count())
        if len(node.children) <= 2 * self.order:
            return None
        mid = len(node.children) // 2
        sibling_node = _Internal()
        promote = node.separators[mid - 1]
        sibling_node.separators = node.separators[mid:]
        sibling_node.children = node.children[mid:]
        sibling_node.counts = node.counts[mid:]
        node.separators = node.separators[: mid - 1]
        node.children = node.children[:mid]
        node.counts = node.counts[:mid]
        return promote, sibling_node

    # ------------------------------------------------------------------
    # Deletion
    # ------------------------------------------------------------------
    def delete(self, attr: float, oid: int) -> None:
        """Delete a key (KeyError if absent)."""
        key = (float(attr), oid)
        self._delete(self._root, key)
        self._size -= 1
        if not self._root.is_leaf and len(self._root.children) == 1:
            self._root = self._root.children[0]

    def _delete(self, node, key) -> None:
        if node.is_leaf:
            index = bisect.bisect_left(node.keys, key)
            if index >= len(node.keys) or node.keys[index] != key:
                raise KeyError(f"key {key} not present")
            del node.keys[index]
            return
        index = node.child_index(key)
        child = node.children[index]
        self._delete(child, key)
        node.counts[index] = child.count()
        self._rebalance_child(node, index)

    def _min_fill(self, child) -> int:
        return self.order if child.is_leaf else self.order

    def _child_len(self, child) -> int:
        return len(child.keys) if child.is_leaf else len(child.children)

    def _rebalance_child(self, node: _Internal, index: int) -> None:
        child = node.children[index]
        minimum = self.order if child.is_leaf else math.ceil(self.order)
        if self._child_len(child) >= minimum:
            return
        left = node.children[index - 1] if index > 0 else None
        right = (
            node.children[index + 1] if index + 1 < len(node.children) else None
        )
        if left is not None and self._child_len(left) > minimum:
            self._borrow_from_left(node, index)
        elif right is not None and self._child_len(right) > minimum:
            self._borrow_from_right(node, index)
        elif left is not None:
            self._merge(node, index - 1)
        elif right is not None:
            self._merge(node, index)
        # A root child may legally underflow; nothing to do otherwise.

    def _borrow_from_left(self, node: _Internal, index: int) -> None:
        left, child = node.children[index - 1], node.children[index]
        if child.is_leaf:
            child.keys.insert(0, left.keys.pop())
            node.separators[index - 1] = child.keys[0]
        else:
            child.children.insert(0, left.children.pop())
            child.counts.insert(0, left.counts.pop())
            child.separators.insert(0, node.separators[index - 1])
            node.separators[index - 1] = left.separators.pop()
        node.counts[index - 1] = left.count()
        node.counts[index] = child.count()

    def _borrow_from_right(self, node: _Internal, index: int) -> None:
        child, right = node.children[index], node.children[index + 1]
        if child.is_leaf:
            child.keys.append(right.keys.pop(0))
            node.separators[index] = right.keys[0]
        else:
            child.children.append(right.children.pop(0))
            child.counts.append(right.counts.pop(0))
            child.separators.append(node.separators[index])
            node.separators[index] = right.separators.pop(0)
        node.counts[index] = child.count()
        node.counts[index + 1] = right.count()

    def _merge(self, node: _Internal, index: int) -> None:
        """Merge children[index + 1] into children[index]."""
        left, right = node.children[index], node.children[index + 1]
        if left.is_leaf:
            left.keys.extend(right.keys)
            left.next = right.next
        else:
            left.separators.append(node.separators[index])
            left.separators.extend(right.separators)
            left.children.extend(right.children)
            left.counts.extend(right.counts)
        del node.separators[index]
        del node.children[index + 1]
        del node.counts[index + 1]
        node.counts[index] = left.count()

    # ------------------------------------------------------------------
    # Range access
    # ------------------------------------------------------------------
    def iter_range(
        self, lo: float, hi: float
    ) -> Iterator[tuple[float, int]]:
        """Yield ``(attr, oid)`` keys with ``lo <= attr <= hi``, in order."""
        start = (float(lo), -math.inf)
        leaf: _Leaf | None = self._find_leaf(start)  # type: ignore[assignment]
        index = bisect.bisect_left(leaf.keys, start)
        while leaf is not None:
            while index < len(leaf.keys):
                attr, oid = leaf.keys[index]
                if attr > hi:
                    return
                yield attr, oid
                index += 1
            leaf = leaf.next
            index = 0

    def count_range(self, lo: float, hi: float) -> int:
        """Number of keys with ``lo <= attr <= hi`` in ``O(log n)``."""
        if lo > hi:
            return 0
        upper = (float(hi), math.inf)
        lower = (float(lo), -math.inf)
        return self._rank(upper) - self._rank(lower)

    def _rank(self, key: tuple[float, float]) -> int:
        """Number of stored keys strictly below ``key``."""
        node = self._root
        rank = 0
        while not node.is_leaf:
            index = node.child_index(key)  # type: ignore[arg-type]
            rank += sum(node.counts[:index])
            node = node.children[index]
        return rank + bisect.bisect_left(node.keys, key)

    # ------------------------------------------------------------------
    # Invariants (for the property tests)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify ordering, fill factors, counts, and leaf links."""
        keys = list(self.iter_range(-math.inf, math.inf))
        assert keys == sorted(keys), "leaf chain out of order"
        assert len(keys) == self._size, "size counter drift"
        self._check_node(self._root, is_root=True)

    def _check_node(self, node, *, is_root: bool) -> int:
        if node.is_leaf:
            if not is_root:
                assert len(node.keys) >= self.order, "leaf underflow"
            assert len(node.keys) <= 2 * self.order, "leaf overflow"
            return len(node.keys)
        assert len(node.children) == len(node.separators) + 1
        assert len(node.counts) == len(node.children)
        if not is_root:
            assert len(node.children) >= self.order, "internal underflow"
        assert len(node.children) <= 2 * self.order, "internal overflow"
        total = 0
        for i, child in enumerate(node.children):
            child_total = self._check_node(child, is_root=False)
            assert node.counts[i] == child_total, "stale count cache"
            total += child_total
        for i, separator in enumerate(node.separators):
            left_max = _subtree_max(node.children[i])
            right_min = _subtree_min(node.children[i + 1])
            assert left_max < separator <= right_min, "separator misplaced"
        return total

    def memory_bytes(self) -> int:
        """12 B per stored key plus 12 B per internal routing entry."""
        internal_entries = _count_internal(self._root)
        return 12 * self._size + 12 * internal_entries


def _subtree_min(node):
    while not node.is_leaf:
        node = node.children[0]
    return node.keys[0]


def _subtree_max(node):
    while not node.is_leaf:
        node = node.children[-1]
    return node.keys[-1]


def _count_internal(node) -> int:
    if node.is_leaf:
        return 0
    return len(node.separators) + sum(
        _count_internal(child) for child in node.children
    )


class BPlusAttributeDirectory:
    """Drop-in replacement for ``AttributeDirectory`` backed by the B+-tree.

    Same interface (`add`/`remove`/`count_in_range`/`ids_in_range`/
    `mask_in_range`/`attribute_of`), with ``O(log n)`` updates instead of
    the sorted list's ``O(n)`` memmove.
    """

    def __init__(self, *, order: int = DEFAULT_ORDER) -> None:
        self._tree = BPlusTree(order=order)
        self._attr_of: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._attr_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._attr_of

    def attribute_of(self, oid: int) -> float:
        """Attribute of a stored object (KeyError if absent)."""
        return self._attr_of[oid]

    def add(self, oid: int, attr: float) -> None:
        """Insert an object (KeyError if the ID is already present)."""
        if oid in self._attr_of:
            raise KeyError(f"object {oid} already present")
        self._tree.insert(float(attr), oid)
        self._attr_of[oid] = float(attr)

    def remove(self, oid: int) -> float:
        """Remove an object, returning its attribute (KeyError if absent)."""
        attr = self._attr_of.pop(oid)
        self._tree.delete(attr, oid)
        return attr

    def count_in_range(self, lo: float, hi: float) -> int:
        """Objects with attribute in ``[lo, hi]`` in ``O(log n)``."""
        return self._tree.count_range(lo, hi)

    def ids_in_range(self, lo: float, hi: float) -> np.ndarray:
        """Object IDs with attribute in ``[lo, hi]``, ascending by key."""
        return np.asarray(
            [oid for _, oid in self._tree.iter_range(lo, hi)], dtype=np.int64
        )

    def mask_in_range(self, lo: float, hi: float, universe: int) -> np.ndarray:
        """Boolean bitmap over ``[0, universe)`` marking in-range IDs."""
        mask = np.zeros(universe, dtype=bool)
        ids = self.ids_in_range(lo, hi)
        mask[ids[ids < universe]] = True
        return mask

    def check_invariants(self) -> None:
        """Verify the tree and the oid→attr map agree."""
        self._tree.check_invariants()
        assert len(self._tree) == len(self._attr_of), (
            "tree and attr map disagree on size"
        )
        for oid, attr in self._attr_of.items():
            assert (attr, oid) in self._tree, (
                f"key ({attr}, {oid}) missing from the tree"
            )

    def memory_bytes(self) -> int:
        """Cost-model bytes of the underlying tree."""
        return self._tree.memory_bytes()
