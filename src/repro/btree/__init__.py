"""B+-tree attribute index (the baselines' secondary index, done properly)."""

from .bptree import BPlusAttributeDirectory, BPlusTree

__all__ = ["BPlusTree", "BPlusAttributeDirectory"]
