"""Deadline-aware micro-batching: the front door's coalescing tick.

The serving layer's batch engine (:func:`repro.core.batch.execute_batch`)
answers a group of queries far cheaper than the same queries one at a
time — shared range plans, coalesced duplicates, cached ADC tables — and
stays bitwise identical to serial execution.  The micro-batcher is the
asyncio-side counterpart of the thread service's read combiner: it holds
arriving queries for one short *tick* so they coalesce, then hands the
group to an executor in one call.

The tick length is **p99-aware**: :class:`BatchWindowPolicy` derives the
window from the observed batch-execution latency histogram
(``frontend.batch_exec_ms`` in :mod:`repro.obs`) as ``fraction × p99``,
clamped to ``[floor_ms, cap_ms]``.  While an execution runs for ~p99 ms,
arrivals pile up naturally; the explicit window only adds enough delay to
form batches when the server is *not* saturated, and the cap bounds the
latency cost of batching when it is idle.

The tick is also **deadline-aware**: the sleep never extends past the
earliest queued request's deadline, and a request whose deadline expired
while queued is shed (completed with ``DEADLINE_EXCEEDED`` by the
server's shed callback) instead of occupying a batch slot.
"""

from __future__ import annotations

import asyncio

from ..obs import histogram

__all__ = ["BatchWindowPolicy", "MicroBatcher"]

#: Wall-clock of one executed micro-batch (queue drain to results ready).
BATCH_EXEC_MS = histogram("frontend.batch_exec_ms")

#: Samples required before the policy trusts the histogram's p99.
_MIN_SAMPLES = 8


class BatchWindowPolicy:
    """Adaptive batching-tick length derived from execution latency.

    Args:
        floor_ms: Smallest window (0 disables artificial delay entirely
            until the histogram warms up).
        cap_ms: Largest window; bounds the latency cost of coalescing.
        fraction: Multiplier on the observed p99 batch-execution latency.
        latency_histogram: The :class:`repro.obs.Histogram` to read;
            defaults to :data:`BATCH_EXEC_MS`.
    """

    def __init__(
        self,
        *,
        floor_ms: float = 0.0,
        cap_ms: float = 2.0,
        fraction: float = 0.25,
        latency_histogram=None,
    ) -> None:
        if floor_ms < 0 or cap_ms < floor_ms:
            raise ValueError(
                f"need 0 <= floor_ms <= cap_ms, got {floor_ms}, {cap_ms}"
            )
        if fraction < 0:
            raise ValueError(f"fraction must be >= 0, got {fraction}")
        self.floor_ms = float(floor_ms)
        self.cap_ms = float(cap_ms)
        self.fraction = float(fraction)
        self._override_ms: float | None = None
        self._histogram = (
            latency_histogram if latency_histogram is not None else BATCH_EXEC_MS
        )

    @classmethod
    def disabled(cls) -> "BatchWindowPolicy":
        """A zero-window policy (per-request dispatch, no coalescing)."""
        return cls(floor_ms=0.0, cap_ms=0.0, fraction=0.0)

    @property
    def override_ms(self) -> float | None:
        """The controller's fixed window override, if one is set."""
        return self._override_ms

    def set_override(self, window_ms: float | None) -> None:
        """Pin the tick length, bypassing the p99-derived window.

        The control plane's sanctioned knob setter (lint rule R013 flags
        direct window mutation elsewhere): the controller calls this with
        a value inside its envelope, or ``None`` to restore the adaptive
        ``fraction × p99`` derivation.  The override is still clamped to
        ``[floor_ms, cap_ms]`` so no caller can push the tick outside the
        policy's hard bounds.
        """
        if window_ms is None:
            self._override_ms = None  # repro: noqa-R013
            return
        window_ms = float(window_ms)
        if window_ms < 0:
            raise ValueError(f"window_ms must be >= 0, got {window_ms}")
        clamped = min(max(window_ms, self.floor_ms), self.cap_ms)
        self._override_ms = clamped  # repro: noqa-R013

    def window_s(self) -> float:
        """The current tick length in seconds."""
        if self._override_ms is not None:
            return self._override_ms / 1000.0
        if self._histogram.count < _MIN_SAMPLES:
            return self.floor_ms / 1000.0
        window_ms = self.fraction * self._histogram.percentile(99)
        return min(max(window_ms, self.floor_ms), self.cap_ms) / 1000.0


class MicroBatcher:
    """The asyncio coalescing loop between tenant queues and execution.

    Args:
        scheduler: A :class:`~repro.frontend.tenancy.FairShareScheduler`
            (or anything with ``pending`` / ``take_one`` /
            ``earliest_deadline``).
        execute: Async callable ``execute(batch)`` invoked with each
            non-empty list of ``(tenant, request)`` pairs.  It must return
            quickly (dispatch the heavy work as a task); the batcher does
            not pipeline past an ``execute`` that blocks.
        shed: Callable ``shed(tenant, request)`` invoked for each queued
            request whose deadline expired before dispatch.
        policy: Tick-length policy; defaults to an adaptive one.
        max_batch: Most requests coalesced into one ``execute`` call.

    Stats attributes (read-only ints): ``batches``, ``batched_requests``,
    ``shed_expired``.
    """

    def __init__(
        self,
        scheduler,
        execute,
        *,
        shed,
        policy: BatchWindowPolicy | None = None,
        max_batch: int = 64,
    ) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._scheduler = scheduler
        self._execute = execute
        self._shed = shed
        self._policy = policy if policy is not None else BatchWindowPolicy()
        self._max_batch = max_batch
        self._wakeup = asyncio.Event()
        self._stopping = False
        self.batches = 0
        self.batched_requests = 0
        self.shed_expired = 0

    @property
    def policy(self) -> BatchWindowPolicy:
        """The tick-length policy (the controller adjusts it via
        :meth:`BatchWindowPolicy.set_override`)."""
        return self._policy

    @property
    def mean_batch_size(self) -> float:
        """Mean requests per executed batch (0.0 before the first)."""
        return self.batched_requests / self.batches if self.batches else 0.0

    def notify(self) -> None:
        """Wake the tick loop (call after every enqueue)."""
        self._wakeup.set()

    def note_shed(self, tenant, request) -> None:
        """Shed one expired request: count it and invoke the shed
        callback.  The server routes execution-time sheds (expiry found
        after dispatch, before the service call) through here too, so
        ``shed_expired`` stays consistent with the per-tenant
        ``deadline_exceeded`` counters."""
        self.shed_expired += 1
        self._shed(tenant, request)

    def request_stop(self) -> None:
        """Ask :meth:`run` to exit once the queues are drained."""
        self._stopping = True
        self._wakeup.set()

    async def run(self) -> None:
        """The tick loop; returns after :meth:`request_stop` + drain."""
        while True:
            if self._scheduler.pending == 0:
                if self._stopping:
                    return
                self._wakeup.clear()
                # Re-check before sleeping: an enqueue+notify may have
                # landed between the pending check and the clear.
                if self._scheduler.pending == 0 and not self._stopping:
                    await self._wakeup.wait()
                continue
            window = self._policy.window_s()
            if window > 0 and not self._stopping:
                earliest = self._scheduler.earliest_deadline()
                if earliest is not None:
                    window = min(window, max(0.0, earliest.remaining_s()))
                if window > 0:
                    await asyncio.sleep(window)
            batch = []
            while len(batch) < self._max_batch:
                taken = self._scheduler.take_one()
                if taken is None:
                    break
                tenant, request = taken
                deadline = getattr(request, "deadline", None)
                if deadline is not None and deadline.expired:
                    self.note_shed(tenant, request)
                    continue
                batch.append((tenant, request))
            if batch:
                self.batches += 1
                self.batched_requests += len(batch)
                await self._execute(batch)
