"""repro.frontend — the asyncio multi-tenant serving front door.

Serves :class:`~repro.service.engine.IndexService` (and the sharded
router) over TCP with a length-prefixed JSON protocol, weighted
fair-share tenancy, client-deadline propagation, and p99-aware
micro-batching.  See ``docs/serving.md`` for the wire spec and the
tuning model.
"""

from .batcher import BatchWindowPolicy, MicroBatcher
from .client import FrontendClient
from .deadlines import Deadline, DeadlineExceeded
from .protocol import (
    ERROR_CODES,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REQUEST_TYPES,
    ProtocolError,
    decode_frame,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    validate_request,
)
from .server import FrontendServer
from .tenancy import (
    FairShareScheduler,
    QuotaExceeded,
    TenantConfig,
    TenantStats,
)

__all__ = [
    "BatchWindowPolicy",
    "MicroBatcher",
    "FrontendClient",
    "Deadline",
    "DeadlineExceeded",
    "ERROR_CODES",
    "MAX_FRAME_BYTES",
    "PROTOCOL_VERSION",
    "REQUEST_TYPES",
    "ProtocolError",
    "decode_frame",
    "encode_frame",
    "error_response",
    "ok_response",
    "read_frame",
    "validate_request",
    "FrontendServer",
    "FairShareScheduler",
    "QuotaExceeded",
    "TenantConfig",
    "TenantStats",
]
