"""Client deadlines, propagated end-to-end through the front door.

A request's ``deadline_ms`` becomes a :class:`Deadline` at arrival and
rides the request object through the tenant queue, the micro-batcher, and
into execution.  Deadlines are enforced *cooperatively* at the points
where enforcement is cheap and safe:

* **at arrival** — an already-expired request is answered
  ``DEADLINE_EXCEEDED`` without ever touching a queue;
* **at batch assembly** — an expired queued request is shed instead of
  occupying a batch slot, an admission slot, and an executor thread;
* **at completion** — a result that arrives after the deadline is
  discarded and the client told ``DEADLINE_EXCEEDED`` (the client has, by
  contract, stopped waiting);
* **in the worker pool** — when the service executes queries on a
  :class:`~repro.parallel.pool.WorkerPool`, the remaining budget becomes
  that batch's per-task timeout (``WorkerPool.run(tasks, timeout_s=...)``),
  so a stuck worker is killed rather than occupied past the deadline.

:class:`DeadlineExceeded` subclasses :class:`TimeoutError`, so generic
timeout handling (including the load generator's outcome classification)
needs no knowledge of this module.
"""

from __future__ import annotations

import time

__all__ = ["Deadline", "DeadlineExceeded"]


class DeadlineExceeded(TimeoutError):
    """A request's client-supplied deadline elapsed before completion.

    Attributes:
        code: The structured protocol error code (``"DEADLINE_EXCEEDED"``).
    """

    code = "DEADLINE_EXCEEDED"

    def __init__(self, message: str = "deadline exceeded") -> None:
        super().__init__(message)


class Deadline:
    """An absolute monotonic-clock expiry instant.

    Built once at request arrival so queueing, batching, and execution
    all measure against the same instant — the propagation contract is
    "time left", never "timeout restarted at each hop".
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = float(expires_at)

    @classmethod
    def after(cls, timeout_s: float) -> "Deadline":
        """A deadline ``timeout_s`` seconds from now (>= 0)."""
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        return cls(time.monotonic() + timeout_s)

    @classmethod
    def from_ms(cls, deadline_ms: float | None) -> "Deadline | None":
        """A deadline from a request's ``deadline_ms`` field (None passes)."""
        if deadline_ms is None:
            return None
        return cls.after(deadline_ms / 1000.0)

    def remaining_s(self) -> float:
        """Seconds left before expiry (negative once past it)."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        """Whether the deadline has passed."""
        return time.monotonic() >= self.expires_at

    def check(self, what: str = "request") -> None:
        """Raise :class:`DeadlineExceeded` if the deadline has passed."""
        if self.expired:
            raise DeadlineExceeded(f"{what} deadline exceeded")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Deadline(remaining_s={self.remaining_s():.4f})"
