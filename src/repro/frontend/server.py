"""The asyncio TCP front door over the thread-based serving core.

:class:`FrontendServer` multiplexes any number of client connections onto
one :class:`~repro.service.engine.IndexService` (or anything with its
surface) without ever blocking the event loop:

* **Transport** — length-prefixed JSON frames
  (:mod:`repro.frontend.protocol`); each connection pipelines requests
  (every frame spawns a task; responses are serialized per connection).
* **Tenancy** — requests are queued per tenant with quota bounds and
  dequeued in weighted fair order
  (:class:`~repro.frontend.tenancy.FairShareScheduler`).
* **Batching** — queued queries coalesce for one adaptive tick
  (:class:`~repro.frontend.batcher.MicroBatcher`) and execute as a group
  through ``service.query_batch`` — bitwise identical to per-request
  calls.
* **Admission** — execution concurrency is bounded by an
  :class:`~repro.service.admission.AdmissionController`; the event loop
  only ever calls its non-blocking ``try_admit`` and parks on an asyncio
  event until a slot frees, with the wait recorded in the
  ``service.admission.wait_ms`` histogram.
* **Deadlines** — client ``deadline_ms`` values become
  :class:`~repro.frontend.deadlines.Deadline` objects enforced at
  arrival, at batch assembly, and at completion; services whose ``query``
  accepts ``timeout_s`` (the sharded router's worker-pool path) get the
  remaining budget propagated as the per-task timeout, and a
  ``query_batch`` that accepts it gets the group's minimum budget.
* **Graceful drain** — :meth:`stop` closes the listener, answers queued
  work, then closes connections; nothing admitted is dropped.

Blocking service calls run on a bounded thread executor via
``loop.run_in_executor``; lint rule R011 keeps blocking primitives out of
the coroutine bodies in this package.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Iterable

import numpy as np

from ..obs import counter, histogram
from ..service.admission import AdmissionController, AdmissionError
from .batcher import BATCH_EXEC_MS, BatchWindowPolicy, MicroBatcher
from .deadlines import Deadline
from .protocol import (
    ProtocolError,
    encode_frame,
    error_response,
    ok_response,
    read_frame,
    validate_request,
)
from .tenancy import FairShareScheduler, QuotaExceeded, TenantConfig

__all__ = ["FrontendServer", "main"]

_REQUESTS = counter("frontend.requests")
_ERRORS = counter("frontend.error_responses")
_REQUEST_MS = histogram("frontend.request_ms")
#: Shared with AdmissionController.admit: queue wait before an execution
#: slot, whichever plane (thread or asyncio) did the waiting.
_ADM_WAIT_MS = histogram("service.admission.wait_ms")

#: How long the slot-wait parks before re-polling try_admit (safety net
#: against a missed wakeup; releases normally set the event directly).
_SLOT_POLL_S = 0.05


class _Request:
    """One queued request: wire payload + deadline + completion future."""

    __slots__ = ("kind", "payload", "deadline", "future")

    def __init__(self, payload: dict, deadline: Deadline | None, future) -> None:
        self.kind = payload["type"]
        self.payload = payload
        self.deadline = deadline
        self.future = future


class FrontendServer:
    """Asyncio multi-tenant front door over one service.

    Args:
        service: Anything with the :class:`IndexService` surface
            (``query``/``insert``/``delete``; ``query_batch`` is used for
            micro-batching when present, per-request ``query`` otherwise).
        host, port: Bind address; port 0 picks an ephemeral port
            (:attr:`port` holds the real one after :meth:`start`).
        tenants: Optional pre-registered :class:`TenantConfig` policies;
            unknown tenants auto-register with weight
            ``default_tenant_weight``.
        default_tenant_weight: Weight for auto-registered tenants.
        default_tenant_max_queue: Queue quota for auto-registered tenants.
        admission: Execution-slot controller; defaults to one bounding
            in-flight executor work at ``executor_threads``.
        executor_threads: Thread count for blocking service calls.
        max_batch: Largest coalesced query batch.
        window_policy: Batching-tick policy; defaults to the adaptive
            p99-derived window (pass
            :meth:`BatchWindowPolicy.disabled` for the unbatched
            per-request path).
    """

    def __init__(
        self,
        service,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        tenants: Iterable[TenantConfig] | None = None,
        default_tenant_weight: float = 1.0,
        default_tenant_max_queue: int = 256,
        admission: AdmissionController | None = None,
        executor_threads: int = 4,
        max_batch: int = 64,
        window_policy: BatchWindowPolicy | None = None,
    ) -> None:
        if executor_threads < 1:
            raise ValueError(
                f"executor_threads must be >= 1, got {executor_threads}"
            )
        self._service = service
        self.host = host
        self.port = port
        self._executor_threads = executor_threads
        self._admission = admission or AdmissionController(
            max_concurrent=executor_threads, max_queue=0
        )
        self._scheduler = FairShareScheduler(
            tenants,
            default_weight=default_tenant_weight,
            default_max_queue=default_tenant_max_queue,
        )
        self._batcher = MicroBatcher(
            self._scheduler,
            self._execute,
            shed=self._shed_expired,
            policy=window_policy,
            max_batch=max_batch,
        )
        self._has_query_batch = hasattr(service, "query_batch")
        self._query_accepts_timeout = self._accepts_timeout(
            getattr(service, "query", None)
        )
        self._batch_accepts_timeout = self._has_query_batch and (
            self._accepts_timeout(service.query_batch)
        )
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._executor: ThreadPoolExecutor | None = None
        self._batcher_task: asyncio.Task | None = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_tasks: set[asyncio.Task] = set()
        self._writers: set[asyncio.StreamWriter] = set()
        self._slot_event = asyncio.Event()
        self._draining = False

    @staticmethod
    def _accepts_timeout(call) -> bool:
        import inspect

        if call is None:
            return False
        try:
            signature = inspect.signature(call)
        except (TypeError, ValueError):
            return False
        return "timeout_s" in signature.parameters

    @property
    def scheduler(self) -> FairShareScheduler:
        """The tenant scheduler (stats / policy introspection)."""
        return self._scheduler

    @property
    def batcher(self) -> MicroBatcher:
        """The micro-batcher (batch-size stats)."""
        return self._batcher

    @property
    def admission(self) -> AdmissionController:
        """The execution-slot controller."""
        return self._admission

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        if self._server is not None:
            raise RuntimeError("server already started")
        self._loop = asyncio.get_running_loop()
        self._executor = ThreadPoolExecutor(
            max_workers=self._executor_threads,
            thread_name_prefix="repro-frontend",
        )
        self._batcher_task = self._loop.create_task(self._batcher.run())
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        return self.host, self.port

    async def stop(self) -> None:
        """Graceful drain: refuse new work, answer queued work, close.

        New requests on existing connections get ``SHUTTING_DOWN``;
        everything already queued is executed (or shed at its deadline)
        and answered before connections close.  Idempotent.
        """
        if self._server is None:
            return
        self._draining = True
        self._server.close()
        self._batcher.request_stop()
        if self._batcher_task is not None:
            await self._batcher_task
            self._batcher_task = None
        # Belt-and-braces: fail anything that slipped into the queues
        # after the batcher drained (cannot normally happen — enqueue and
        # the draining check share one event-loop step).
        while True:
            taken = self._scheduler.take_one()
            if taken is None:
                break
            tenant, request = taken
            self._finish(
                tenant,
                request,
                error_response(
                    request.payload["id"], "SHUTTING_DOWN", "server stopped"
                ),
                outcome="failed",
            )
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        # Hang up on still-connected clients: cancel every connection
        # handler (they exit quietly) and close its transport.  This must
        # precede Server.wait_closed(), which since CPython 3.12.1
        # (gh-79033) also waits for the per-connection handlers — awaiting
        # it with clients still connected would deadlock the drain.
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*list(self._conn_tasks), return_exceptions=True)
        self._conn_tasks.clear()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        await self._server.wait_closed()
        # Requests that raced in after the gather above were answered
        # SHUTTING_DOWN (or had their writes dropped on the closed
        # transport); reap their tasks — no new ones can spawn now.
        while self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._server = None

    def stats(self) -> dict:
        """Server / tenant / admission counters (the ``stats`` reply)."""
        return {
            "draining": self._draining,
            "batches": self._batcher.batches,
            "batched_requests": self._batcher.batched_requests,
            "mean_batch_size": self._batcher.mean_batch_size,
            "shed_expired": self._batcher.shed_expired,
            "admission": {
                "admitted": self._admission.stats.admitted,
                "rejected": self._admission.stats.rejected,
                "active": self._admission.active,
            },
            "service_version": getattr(self._service, "version", None),
            "tenants": self._scheduler.snapshot(),
        }

    # ------------------------------------------------------------------
    # Connection plane
    # ------------------------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        self._writers.add(writer)
        send_lock = asyncio.Lock()
        try:
            while True:
                try:
                    message = await read_frame(reader)
                except ProtocolError as error:
                    # Framing is lost; answer once and hang up.
                    await self._send(
                        writer,
                        send_lock,
                        error_response(None, error.code, str(error)),
                    )
                    break
                if message is None:
                    break
                task = asyncio.ensure_future(
                    self._serve_request(message, writer, send_lock)
                )
                self._track(task)
        except asyncio.CancelledError:
            pass  # stop() hung up on us; exit without teardown noise
        except (ConnectionError, OSError):
            pass  # client went away mid-read; nothing to answer
        finally:
            self._conn_tasks.discard(task)
            self._writers.discard(writer)
            writer.close()

    async def _serve_request(self, message, writer, send_lock) -> None:
        arrival = time.monotonic()
        _REQUESTS.inc()
        try:
            request_payload = validate_request(message)
        except ProtocolError as error:
            raw_id = message.get("id")
            request_id = raw_id if isinstance(raw_id, int) else None
            await self._respond(
                writer,
                send_lock,
                error_response(request_id, error.code, str(error)),
            )
            return
        request_id = request_payload["id"]
        if request_payload["type"] == "stats":
            await self._respond(
                writer, send_lock, ok_response(request_id, self.stats())
            )
            return
        if self._draining:
            await self._respond(
                writer,
                send_lock,
                error_response(request_id, "SHUTTING_DOWN", "server is draining"),
            )
            return
        tenant = request_payload["tenant"]
        deadline = Deadline.from_ms(request_payload["deadline_ms"])
        if deadline is not None and deadline.expired:
            self._note_outcome(tenant, "deadline_exceeded")
            await self._respond(
                writer,
                send_lock,
                error_response(
                    request_id, "DEADLINE_EXCEEDED", "deadline expired on arrival"
                ),
            )
            return
        request = _Request(
            request_payload, deadline, self._loop.create_future()
        )
        try:
            self._scheduler.enqueue(tenant, request)
        except QuotaExceeded as error:
            await self._respond(
                writer,
                send_lock,
                error_response(request_id, "OVER_QUOTA", str(error)),
            )
            return
        self._batcher.notify()
        response = await request.future
        _REQUEST_MS.observe((time.monotonic() - arrival) * 1000.0)
        await self._respond(writer, send_lock, response)

    async def _respond(self, writer, send_lock, response: dict) -> None:
        if not response.get("ok", False):
            _ERRORS.inc()
        await self._send(writer, send_lock, response)

    async def _send(self, writer, send_lock, message: dict) -> None:
        frame = encode_frame(message)
        try:
            async with send_lock:
                writer.write(frame)
                await writer.drain()
        except (ConnectionError, OSError):
            pass  # client went away; the outcome was already accounted

    # ------------------------------------------------------------------
    # Execution plane
    # ------------------------------------------------------------------
    def _track(self, task: asyncio.Task) -> None:
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    def _shed_expired(self, tenant: str, request: _Request) -> None:
        """Batcher callback: a queued request's deadline expired."""
        self._finish(
            tenant,
            request,
            error_response(
                request.payload["id"],
                "DEADLINE_EXCEEDED",
                "deadline expired while queued",
            ),
            outcome="deadline_exceeded",
        )

    async def _execute(self, batch: list[tuple[str, _Request]]) -> None:
        """Batcher callback: dispatch one fair-ordered batch.

        Returns as soon as the work is scheduled so the tick loop keeps
        coalescing while execution runs on admission-bounded tasks.
        """
        queries = [(t, r) for t, r in batch if r.kind == "query"]
        for tenant, request in batch:
            if request.kind != "query":
                self._track(
                    self._loop.create_task(self._run_write(tenant, request))
                )
        if queries:
            self._track(
                self._loop.create_task(self._run_query_batch(queries))
            )

    async def _acquire_slot(self, kind: str):
        """Non-blocking admission poll; parks on the release event."""
        started = time.monotonic()
        while True:
            slot = self._admission.try_admit(kind)
            if slot is not None:
                _ADM_WAIT_MS.observe((time.monotonic() - started) * 1000.0)
                return slot
            self._slot_event.clear()
            try:
                await asyncio.wait_for(
                    self._slot_event.wait(), timeout=_SLOT_POLL_S
                )
            except TimeoutError:
                pass
            except asyncio.TimeoutError:  # pre-3.11 alias  # pragma: no cover
                pass

    def _release_slot(self, slot) -> None:
        slot.__exit__(None, None, None)
        self._slot_event.set()

    async def _run_query_batch(self, queries: list[tuple[str, _Request]]) -> None:
        slot = await self._acquire_slot("read")
        try:
            live: list[tuple[str, _Request]] = []
            for tenant, request in queries:
                if request.deadline is not None and request.deadline.expired:
                    self._batcher.note_shed(tenant, request)
                else:
                    live.append((tenant, request))
            if not live:
                return
            started = time.monotonic()
            outcomes = await self._loop.run_in_executor(
                self._executor,
                self._query_batch_sync,
                [request for _, request in live],
            )
            BATCH_EXEC_MS.observe((time.monotonic() - started) * 1000.0)
            for (tenant, request), (status, value) in zip(live, outcomes):
                if status == "error":
                    self._finish_error(tenant, request, value)
                elif request.deadline is not None and request.deadline.expired:
                    self._finish(
                        tenant,
                        request,
                        error_response(
                            request.payload["id"],
                            "DEADLINE_EXCEEDED",
                            "result ready after the deadline",
                        ),
                        outcome="deadline_exceeded",
                    )
                else:
                    self._finish(
                        tenant,
                        request,
                        ok_response(request.payload["id"], value),
                        outcome="completed",
                    )
        finally:
            self._release_slot(slot)

    def _query_batch_sync(self, requests: list[_Request]) -> list:
        """Executor thread: answer a query group, one service call per
        ``(k, l_budget)`` parameter class (mirrors the read combiner).

        When the service's ``query_batch`` accepts ``timeout_s``, the
        minimum remaining budget across the group's deadlines is passed
        so a coalesced batch cannot occupy workers past every member's
        deadline.  Services without that parameter run the batch to
        completion; expiry is then only detected at completion (the
        per-request ``query`` path propagates budgets individually).
        """
        outcomes: list = [None] * len(requests)
        groups: dict[tuple[int, int | None], list[int]] = {}
        for position, request in enumerate(requests):
            key = (request.payload["k"], request.payload["l_budget"])
            groups.setdefault(key, []).append(position)
        for (k, l_budget), positions in groups.items():
            if self._has_query_batch and len(positions) > 1:
                vectors = np.asarray(
                    [requests[i].payload["vector"] for i in positions],
                    dtype=np.float64,
                )
                ranges = [
                    (requests[i].payload["lo"], requests[i].payload["hi"])
                    for i in positions
                ]
                kwargs: dict = {"l_budget": l_budget}
                if self._batch_accepts_timeout:
                    budgets = [
                        requests[i].deadline.remaining_s()
                        for i in positions
                        if requests[i].deadline is not None
                    ]
                    if budgets:
                        kwargs["timeout_s"] = max(min(budgets), 0.0)
                try:
                    batch_result = self._service.query_batch(
                        vectors, ranges, k, **kwargs
                    )
                except BaseException as error:  # repro: noqa-R004 — per-request fault barrier: marshalled to each caller
                    for position in positions:
                        outcomes[position] = ("error", error)
                    continue
                for position, result in zip(positions, batch_result.results):
                    outcomes[position] = (
                        "ok",
                        {
                            "ids": result.ids.tolist(),
                            "distances": result.distances.tolist(),
                        },
                    )
            else:
                for position in positions:
                    outcomes[position] = self._query_one_sync(
                        requests[position], k, l_budget
                    )
        return outcomes

    def _query_one_sync(self, request: _Request, k: int, l_budget):
        payload = request.payload
        kwargs: dict = {"l_budget": l_budget}
        if self._query_accepts_timeout and request.deadline is not None:
            kwargs["timeout_s"] = max(request.deadline.remaining_s(), 0.0)
        try:
            result = self._service.query(
                np.asarray(payload["vector"], dtype=np.float64),
                payload["lo"],
                payload["hi"],
                k,
                **kwargs,
            )
        except BaseException as error:  # repro: noqa-R004 — per-request fault barrier: marshalled to the caller
            return ("error", error)
        return (
            "ok",
            {"ids": result.ids.tolist(), "distances": result.distances.tolist()},
        )

    async def _run_write(self, tenant: str, request: _Request) -> None:
        slot = await self._acquire_slot("write")
        try:
            if request.deadline is not None and request.deadline.expired:
                self._batcher.note_shed(tenant, request)
                return
            try:
                await self._loop.run_in_executor(
                    self._executor, self._write_sync, request
                )
            except BaseException as error:  # repro: noqa-R004 — per-request fault barrier: marshalled to the caller
                self._finish_error(tenant, request, error)
                return
            self._finish(
                tenant,
                request,
                ok_response(
                    request.payload["id"],
                    {
                        "applied": True,
                        "version": getattr(self._service, "version", None),
                    },
                ),
                outcome="completed",
            )
        finally:
            self._release_slot(slot)

    def _write_sync(self, request: _Request) -> None:
        payload = request.payload
        if request.kind == "insert":
            self._service.insert(
                payload["oid"],
                np.asarray(payload["vector"], dtype=np.float64),
                payload["attr"],
            )
        else:
            self._service.delete(payload["oid"])

    # ------------------------------------------------------------------
    # Outcome bookkeeping
    # ------------------------------------------------------------------
    def _finish(
        self, tenant: str, request: _Request, response: dict, *, outcome: str
    ) -> None:
        self._note_outcome(tenant, outcome)
        if not request.future.done():
            request.future.set_result(response)

    def _finish_error(self, tenant: str, request: _Request, error) -> None:
        request_id = request.payload["id"]
        if isinstance(error, TimeoutError) or (
            getattr(error, "code", None) == "DEADLINE_EXCEEDED"
        ):
            response = error_response(
                request_id, "DEADLINE_EXCEEDED", str(error) or "deadline exceeded"
            )
            outcome = "deadline_exceeded"
        elif isinstance(error, AdmissionError):
            response = error_response(request_id, "ADMISSION_REJECTED", str(error))
            outcome = "rejected_admission"
        elif isinstance(error, (ValueError, KeyError)):
            response = error_response(request_id, "BAD_REQUEST", str(error))
            outcome = "failed"
        else:
            response = error_response(
                request_id, "INTERNAL", f"{type(error).__name__}: {error}"
            )
            outcome = "failed"
        self._finish(tenant, request, response, outcome=outcome)

    def _note_outcome(self, tenant: str, outcome: str) -> None:
        try:
            stats = self._scheduler.touch(tenant)
        except KeyError:  # auto-register off and the tenant is unknown
            return
        setattr(stats, outcome, getattr(stats, outcome) + 1)


def main(argv=None) -> int:
    """``python -m repro serve``: run a front door over a built-in index."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description=(
            "Serve a freshly built RangePQ+ index over the asyncio front "
            "door (length-prefixed JSON protocol; see docs/serving.md)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8753)
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument(
        "--tenants",
        default="",
        help="comma-separated name:weight pairs, e.g. 'free:1,paid:4'",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="dispatch per request (no coalescing tick)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="serve for this many seconds, then drain (default: forever)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    from ..core import AdaptiveLPolicy, RangePQPlus
    from ..datasets import load_workload
    from ..eval.harness import scaled_l_base
    from ..service.engine import IndexService
    from ..service.maintenance import MaintenanceDaemon

    tenants = []
    if args.tenants:
        for pair in args.tenants.split(","):
            name, _, weight = pair.partition(":")
            tenants.append(
                TenantConfig(name=name.strip(), weight=float(weight or 1.0))
            )
    workload = load_workload(
        "sift", n=args.n, d=args.dim, num_queries=8, seed=args.seed
    )
    index = RangePQPlus.build(
        workload.vectors,
        workload.attrs,
        seed=args.seed,
        l_policy=AdaptiveLPolicy(
            l_base=scaled_l_base("sift", args.n), r_base=0.10
        ),
    )
    service = IndexService(index, defer_maintenance=True)

    async def _serve() -> None:
        server = FrontendServer(
            service,
            host=args.host,
            port=args.port,
            tenants=tenants,
            executor_threads=args.threads,
            max_batch=args.max_batch,
            window_policy=(
                BatchWindowPolicy.disabled() if args.no_batching else None
            ),
        )
        host, port = await server.start()
        print(f"serving n={args.n} d={args.dim} on {host}:{port}")
        try:
            if args.duration is None:
                await asyncio.Event().wait()
            else:
                await asyncio.sleep(args.duration)
        finally:
            await server.stop()

    with MaintenanceDaemon(service, interval_s=0.1):
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("draining")
    return 0
