"""Async client for the front door's length-prefixed JSON protocol.

:class:`FrontendClient` speaks :mod:`repro.frontend.protocol` over one TCP
connection and pipelines requests: every call gets a fresh ``id``, frames
go out as they are made, and a background reader task resolves each
response to its caller's future.  One client is therefore safe to share
among many concurrent coroutines (the network load generator drives all
of a tenant's traffic through one connection).

Server-side failures come back as exceptions mirroring the direct-call
API, so call sites are oblivious to the network hop:

* ``DEADLINE_EXCEEDED`` → :class:`~repro.frontend.deadlines.DeadlineExceeded`
  (a :class:`TimeoutError`);
* ``OVER_QUOTA`` / ``ADMISSION_REJECTED`` →
  :class:`~repro.service.admission.AdmissionError`;
* every other code → :class:`~repro.frontend.protocol.ProtocolError`;
* a lost connection → :class:`ConnectionError` for every pending call.
"""

from __future__ import annotations

import asyncio
import itertools

import numpy as np

from ..service.admission import AdmissionError
from .deadlines import DeadlineExceeded
from .protocol import PROTOCOL_VERSION, ProtocolError, encode_frame, read_frame

__all__ = ["FrontendClient"]


class FrontendClient:  # repro: noqa-R005 — a wire stub, not an index; invariants live server-side
    """One pipelined protocol connection; build with :meth:`connect`."""

    def __init__(self, reader, writer) -> None:
        self._reader = reader
        self._writer = writer
        self._send_lock = asyncio.Lock()
        self._ids = itertools.count(1)
        self._pending: dict[int, asyncio.Future] = {}
        self._reader_task = asyncio.ensure_future(self._read_loop())
        self._closing = False

    @classmethod
    async def connect(cls, host: str, port: int) -> "FrontendClient":
        """Open a connection to a :class:`FrontendServer`."""
        reader, writer = await asyncio.open_connection(host, port)
        return cls(reader, writer)

    async def close(self) -> None:
        """Close the connection; pending calls get :class:`ConnectionError`."""
        self._closing = True
        self._writer.close()
        self._reader_task.cancel()
        try:
            await self._reader_task
        except asyncio.CancelledError:
            pass
        self._fail_pending(ConnectionError("client closed"))

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    async def query(
        self,
        vector,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
        tenant: str = "default",
        deadline_ms: float | None = None,
    ) -> dict:
        """Range-filtered k-NN; returns ``{"ids": [...], "distances": [...]}``."""
        result = await self._request(
            {
                "type": "query",
                "tenant": tenant,
                "deadline_ms": deadline_ms,
                "vector": np.asarray(vector, dtype=np.float64).tolist(),
                "lo": float(lo),
                "hi": float(hi),
                "k": int(k),
                "l_budget": l_budget,
            }
        )
        return result

    async def insert(
        self,
        oid: int,
        vector,
        attr: float,
        *,
        tenant: str = "default",
        deadline_ms: float | None = None,
    ) -> dict:
        """Insert one vector; returns ``{"applied": True, "version": ...}``."""
        return await self._request(
            {
                "type": "insert",
                "tenant": tenant,
                "deadline_ms": deadline_ms,
                "oid": int(oid),
                "vector": np.asarray(vector, dtype=np.float64).tolist(),
                "attr": float(attr),
            }
        )

    async def delete(
        self,
        oid: int,
        *,
        tenant: str = "default",
        deadline_ms: float | None = None,
    ) -> dict:
        """Delete one vector by id."""
        return await self._request(
            {
                "type": "delete",
                "tenant": tenant,
                "deadline_ms": deadline_ms,
                "oid": int(oid),
            }
        )

    async def stats(self) -> dict:
        """The server's live stats snapshot."""
        return await self._request({"type": "stats"})

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    async def _request(self, message: dict) -> dict:
        if self._closing:
            raise ConnectionError("client closed")
        request_id = next(self._ids)
        message = {"v": PROTOCOL_VERSION, "id": request_id, **message}
        future = asyncio.get_running_loop().create_future()
        self._pending[request_id] = future
        frame = encode_frame(message)
        try:
            async with self._send_lock:
                self._writer.write(frame)
                await self._writer.drain()
        except (ConnectionError, OSError) as error:
            self._pending.pop(request_id, None)
            raise ConnectionError(f"send failed: {error}")
        try:
            response = await future
        finally:
            self._pending.pop(request_id, None)
        if response.get("ok", False):
            return response["result"]
        raise self._error_from(message, response)

    @staticmethod
    def _error_from(request: dict, response: dict) -> Exception:
        code = response.get("code", "INTERNAL")
        message = response.get("error", "")
        if code == "DEADLINE_EXCEEDED":
            return DeadlineExceeded(message or "deadline exceeded")
        if code == "OVER_QUOTA":
            return AdmissionError("over-quota", request.get("type", "request"))
        if code == "ADMISSION_REJECTED":
            return AdmissionError("rejected", request.get("type", "request"))
        try:
            return ProtocolError(code, message)
        except ValueError:
            return ProtocolError("INTERNAL", f"{code}: {message}")

    async def _read_loop(self) -> None:
        error: Exception = ConnectionError("connection closed by server")
        try:
            while True:
                response = await read_frame(self._reader)
                if response is None:
                    break
                request_id = response.get("id")
                future = self._pending.get(request_id)
                if future is not None and not future.done():
                    future.set_result(response)
        except asyncio.CancelledError:
            raise
        except BaseException as caught:  # repro: noqa-R004 — connection fault barrier: every pending call must observe the loss
            error = ConnectionError(f"connection lost: {caught}")
        self._fail_pending(error)

    def _fail_pending(self, error: Exception) -> None:
        for future in list(self._pending.values()):
            if not future.done():
                future.set_exception(error)
        self._pending.clear()
