"""Network load generator for the front door (``serve-bench --net``).

Runs the full client → TCP → fair-share queue → micro-batch → executor
path against a freshly built index and checks the serving-layer claims
that matter:

* **Batching pays** — the same open-loop Poisson schedule is replayed
  against an unbatched server (``max_batch=1``, zero window) and a
  micro-batched one; batched completed-QPS must not be lower.
* **No starvation** — every tenant's share of completions must be within
  2x of its weight share (a lower bound: with unsaturated equal offered
  load, light tenants legitimately complete *more* than their weight
  share).
* **No event-loop blocking** — the whole bench runs under asyncio debug
  mode; any "Executing ... took N seconds" slow-callback warning fails
  the run.

The driver is open-loop: arrivals follow a Poisson process fixed by seed,
independent of completions, so a slow server accumulates lateness instead
of silently throttling the offered load.  Both scheduled-arrival latency
(from intended arrival) and service latency (from actual send) are
reported, mirroring the in-process load generator.
"""

from __future__ import annotations

import asyncio
import logging
import random
import time
from dataclasses import dataclass, field

import numpy as np

from ..service.admission import AdmissionError
from .batcher import BatchWindowPolicy
from .client import FrontendClient
from .server import FrontendServer
from .tenancy import TenantConfig

__all__ = ["main", "run_net_bench"]


@dataclass
class _TenantLoad:
    """One tenant's outcomes for one phase."""

    weight: float
    scheduled: int = 0
    completed: int = 0
    deadline_exceeded: int = 0
    rejected: int = 0
    connection_errors: int = 0
    failed: int = 0
    latencies_ms: list = field(default_factory=list)
    sched_latencies_ms: list = field(default_factory=list)


def _percentile(values: list, q: float) -> float:
    if not values:
        return 0.0
    return float(np.percentile(np.asarray(values, dtype=np.float64), q))


async def _drive_tenant(
    client: FrontendClient,
    tenant: str,
    load: _TenantLoad,
    *,
    qps: float,
    duration_s: float,
    queries: np.ndarray,
    ranges: list,
    k: int,
    deadline_ms: float | None,
    seed: int,
) -> None:
    """Open-loop Poisson driver for one tenant over one connection."""
    loop = asyncio.get_running_loop()
    rng = random.Random(seed)
    start = loop.time()
    next_arrival = start
    inflight: list[asyncio.Future] = []
    index = 0
    while True:
        next_arrival += rng.expovariate(qps)
        if next_arrival - start > duration_s:
            break
        delay = next_arrival - loop.time()
        if delay > 0:
            await asyncio.sleep(delay)
        load.scheduled += 1
        inflight.append(
            asyncio.ensure_future(
                _one_query(
                    client,
                    tenant,
                    load,
                    queries[index % len(queries)],
                    ranges[index % len(ranges)],
                    k,
                    deadline_ms,
                    next_arrival,
                )
            )
        )
        index += 1
    if inflight:
        await asyncio.gather(*inflight)


async def _one_query(
    client, tenant, load, vector, query_range, k, deadline_ms, scheduled_at
) -> None:
    loop = asyncio.get_running_loop()
    sent_at = loop.time()
    try:
        await client.query(
            vector,
            query_range[0],
            query_range[1],
            k,
            tenant=tenant,
            deadline_ms=deadline_ms,
        )
    except TimeoutError:
        load.deadline_exceeded += 1
        return
    except AdmissionError:
        load.rejected += 1
        return
    except (ConnectionError, OSError):
        load.connection_errors += 1
        return
    except Exception:  # repro: noqa-R004 — loadgen outcome barrier: any other failure is an outcome category, not a crash
        load.failed += 1
        return
    done = loop.time()
    load.completed += 1
    load.latencies_ms.append((done - sent_at) * 1000.0)
    load.sched_latencies_ms.append((done - scheduled_at) * 1000.0)


async def _run_phase(
    service,
    *,
    name: str,
    batched: bool,
    tenants: list[TenantConfig],
    qps: float,
    duration_s: float,
    queries: np.ndarray,
    ranges: list,
    k: int,
    deadline_ms: float | None,
    threads: int,
    max_batch: int,
    seed: int,
) -> dict:
    server = FrontendServer(
        service,
        tenants=tenants,
        executor_threads=threads,
        max_batch=max_batch if batched else 1,
        window_policy=None if batched else BatchWindowPolicy.disabled(),
    )
    host, port = await server.start()
    loads = {t.name: _TenantLoad(weight=t.weight) for t in tenants}
    clients = {t.name: await FrontendClient.connect(host, port) for t in tenants}
    started = time.monotonic()
    try:
        await asyncio.gather(
            *(
                _drive_tenant(
                    clients[t.name],
                    t.name,
                    loads[t.name],
                    qps=qps,
                    duration_s=duration_s,
                    queries=queries,
                    ranges=ranges,
                    k=k,
                    deadline_ms=deadline_ms,
                    # Same per-tenant seed in both phases: identical
                    # arrival schedules make the QPS comparison paired.
                    seed=seed + 7919 * position,
                )
                for position, t in enumerate(tenants)
            )
        )
    finally:
        elapsed_s = time.monotonic() - started
        mean_batch = server.batcher.mean_batch_size
        for client in clients.values():
            await client.close()
        await server.stop()
    all_lat = [v for load in loads.values() for v in load.latencies_ms]
    all_sched = [v for load in loads.values() for v in load.sched_latencies_ms]
    completed = sum(load.completed for load in loads.values())
    return {
        "name": name,
        "elapsed_s": elapsed_s,
        "qps": completed / elapsed_s if elapsed_s > 0 else 0.0,
        "completed": completed,
        "scheduled": sum(load.scheduled for load in loads.values()),
        "deadline_exceeded": sum(l.deadline_exceeded for l in loads.values()),
        "rejected": sum(l.rejected for l in loads.values()),
        "connection_errors": sum(l.connection_errors for l in loads.values()),
        "failed": sum(l.failed for l in loads.values()),
        "p50_ms": _percentile(all_lat, 50),
        "p99_ms": _percentile(all_lat, 99),
        "sched_p99_ms": _percentile(all_sched, 99),
        "mean_batch_size": mean_batch,
        "tenants": {
            tenant: {"weight": load.weight, "completed": load.completed}
            for tenant, load in loads.items()
        },
    }


def fairness_violations(tenants: dict) -> list[str]:
    """Tenants whose completion share is under half their weight share.

    ``tenants`` maps name -> {"weight", "completed"}.  The check is a
    lower bound only — exceeding one's weight share is legitimate
    whenever heavier tenants do not saturate the server.
    """
    total_completed = sum(t["completed"] for t in tenants.values())
    total_weight = sum(t["weight"] for t in tenants.values())
    if total_completed == 0 or total_weight <= 0:
        return []
    violations = []
    for name, t in sorted(tenants.items()):
        weight_share = t["weight"] / total_weight
        completion_share = t["completed"] / total_completed
        if completion_share * 2.0 < weight_share:
            violations.append(
                f"tenant {name!r}: completion share {completion_share:.3f} "
                f"< half its weight share {weight_share:.3f}"
            )
    return violations


class _SlowCallbackCounter(logging.Handler):
    """Counts asyncio debug-mode slow-callback ("Executing ... took")
    warnings, which indicate the event loop was blocked."""

    def __init__(self) -> None:
        super().__init__(level=logging.WARNING)
        self.count = 0
        self.samples: list[str] = []

    def emit(self, record: logging.LogRecord) -> None:
        message = record.getMessage()
        if "Executing" in message and "took" in message:
            self.count += 1
            if len(self.samples) < 3:
                self.samples.append(message)


def run_net_bench(
    *,
    n: int = 20_000,
    dim: int = 64,
    duration_s: float = 4.0,
    qps: float = 150.0,
    k: int = 10,
    threads: int = 4,
    max_batch: int = 64,
    deadline_ms: float | None = 500.0,
    tenant_weights: dict | None = None,
    seed: int = 0,
) -> dict:
    """Build an index, serve it, and drive both phases; returns a report
    dict with ``phases`` (unbatched first), ``fairness_violations``, and
    ``blocking_warnings``."""
    from ..core import AdaptiveLPolicy, RangePQPlus
    from ..datasets import load_workload
    from ..eval.harness import scaled_l_base
    from ..service.engine import IndexService

    tenant_weights = tenant_weights or {"free": 1.0, "paid": 3.0}
    tenants = [
        TenantConfig(name=name, weight=weight)
        for name, weight in sorted(tenant_weights.items())
    ]
    workload = load_workload("sift", n=n, d=dim, num_queries=32, seed=seed)
    index = RangePQPlus.build(
        workload.vectors,
        workload.attrs,
        seed=seed,
        l_policy=AdaptiveLPolicy(l_base=scaled_l_base("sift", n), r_base=0.10),
    )
    service = IndexService(index, defer_maintenance=True)
    queries = workload.queries
    range_rng = np.random.default_rng(seed + 1)
    ranges = [
        tuple(float(v) for v in workload.range_for_coverage(coverage, range_rng))
        for coverage in (0.05, 0.10, 0.20, 0.40)
        for _ in range(2)
    ]

    counter = _SlowCallbackCounter()
    asyncio_logger = logging.getLogger("asyncio")
    asyncio_logger.addHandler(counter)
    previous_level = asyncio_logger.level
    if asyncio_logger.level > logging.WARNING or asyncio_logger.level == 0:
        asyncio_logger.setLevel(logging.WARNING)

    async def _both_phases() -> list:
        phases = []
        for name, batched in (("unbatched", False), ("batched", True)):
            phases.append(
                await _run_phase(
                    service,
                    name=name,
                    batched=batched,
                    tenants=tenants,
                    qps=qps,
                    duration_s=duration_s,
                    queries=queries,
                    ranges=ranges,
                    k=k,
                    deadline_ms=deadline_ms,
                    threads=threads,
                    max_batch=max_batch,
                    seed=seed,
                )
            )
        return phases

    try:
        phases = asyncio.run(_both_phases(), debug=True)
    finally:
        asyncio_logger.removeHandler(counter)
        asyncio_logger.setLevel(previous_level)

    batched_phase = phases[-1]
    return {
        "phases": phases,
        "fairness_violations": fairness_violations(batched_phase["tenants"]),
        "blocking_warnings": counter.count,
        "blocking_samples": counter.samples,
    }


def _format_report(report: dict) -> str:
    lines = []
    for phase in report["phases"]:
        lines.append(
            f"[{phase['name']:>9}] qps={phase['qps']:8.1f}  "
            f"p50={phase['p50_ms']:6.2f}ms  p99={phase['p99_ms']:7.2f}ms  "
            f"sched_p99={phase['sched_p99_ms']:7.2f}ms  "
            f"batch={phase['mean_batch_size']:5.2f}"
        )
        lines.append(
            f"            completed={phase['completed']}/{phase['scheduled']}  "
            f"deadline_exceeded={phase['deadline_exceeded']}  "
            f"rejected={phase['rejected']}  "
            f"conn_errors={phase['connection_errors']}  "
            f"failed={phase['failed']}"
        )
        shares = "  ".join(
            f"{name}:{t['completed']}(w={t['weight']:g})"
            for name, t in sorted(phase["tenants"].items())
        )
        lines.append(f"            tenants: {shares}")
    return "\n".join(lines)


def main(argv=None) -> int:
    """``python -m repro serve-bench --net`` entry; exit 1 on any failed
    serving-layer check."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro serve-bench --net",
        description="Open-loop network bench of the asyncio front door.",
    )
    parser.add_argument("--smoke", action="store_true", help="tiny CI run")
    parser.add_argument("--n", type=int, default=20_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--qps", type=float, default=150.0)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--threads", type=int, default=4)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--deadline-ms", type=float, default=500.0)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    if args.smoke:
        args.n = min(args.n, 4000)
        args.dim = min(args.dim, 32)
        args.duration = min(args.duration, 1.2)
        args.qps = min(args.qps, 60.0)

    report = run_net_bench(
        n=args.n,
        dim=args.dim,
        duration_s=args.duration,
        qps=args.qps,
        k=args.k,
        threads=args.threads,
        max_batch=args.max_batch,
        deadline_ms=args.deadline_ms,
        seed=args.seed,
    )
    print(_format_report(report))

    failures = []
    unbatched, batched = report["phases"][0], report["phases"][-1]
    if batched["qps"] < unbatched["qps"] * 0.98:
        failures.append(
            f"batched qps {batched['qps']:.1f} below unbatched "
            f"{unbatched['qps']:.1f}"
        )
    failures.extend(report["fairness_violations"])
    if report["blocking_warnings"]:
        failures.append(
            f"{report['blocking_warnings']} event-loop blocking warning(s): "
            + "; ".join(report["blocking_samples"])
        )
    for phase in report["phases"]:
        if phase["connection_errors"] or phase["failed"]:
            failures.append(
                f"phase {phase['name']}: {phase['connection_errors']} "
                f"connection errors, {phase['failed']} failures"
            )
    if failures:
        for failure in failures:
            print(f"FAIL: {failure}")
        return 1
    print("net-bench checks passed: batched >= unbatched qps, fair shares, no loop blocking")
    return 0
