"""Per-tenant namespaces: quotas and weighted fair-share scheduling.

Every request entering the front door belongs to a *tenant*.  Tenants get
three things a single undifferentiated queue cannot provide:

* **Quota accounting** — each tenant's queue depth is bounded
  (``max_queue``); beyond it the request is rejected with ``OVER_QUOTA``
  instead of letting one tenant's backlog consume the whole server's
  memory and everyone else's latency.
* **Weighted fair share** — dequeue order follows *stride scheduling*
  (Waldspurger & Weihl, OSDI '95): each tenant holds a ``pass`` value and
  a ``stride`` inversely proportional to its weight; the scheduler always
  serves the backlogged tenant with the smallest pass, then advances that
  tenant's pass by its stride.  Over any interval in which tenants stay
  backlogged, tenant throughput is proportional to weight to within one
  request — deterministic, O(#tenants) per dequeue, and **starvation-free**
  (every backlogged tenant's pass is eventually minimal because passes of
  served tenants strictly increase).
* **Idle-credit clamping** — a tenant re-entering after idling has its
  pass clamped up to the scheduler's virtual time, so sleeping does not
  bank an arbitrarily large burst entitlement that would starve active
  tenants on return.

The scheduler is single-threaded by design: it lives on the asyncio event
loop (enqueue from connection coroutines, dequeue from the batcher task)
and therefore needs no locks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = [
    "QuotaExceeded",
    "TenantConfig",
    "TenantStats",
    "FairShareScheduler",
]

#: Stride numerator; large so integer strides stay precise across weights.
_STRIDE_SCALE = 1 << 20


class QuotaExceeded(RuntimeError):
    """A tenant's queue quota is exhausted.

    Attributes:
        code: The structured protocol error code (``"OVER_QUOTA"``).
        tenant: The tenant whose quota was hit.
    """

    code = "OVER_QUOTA"

    def __init__(self, tenant: str, max_queue: int) -> None:
        super().__init__(
            f"tenant {tenant!r} queue quota exhausted ({max_queue} waiting)"
        )
        self.tenant = tenant


@dataclass(frozen=True)
class TenantConfig:
    """Static per-tenant policy.

    Attributes:
        name: Tenant namespace (the wire ``tenant`` field).
        weight: Fair-share weight (> 0); a weight-2 tenant gets twice the
            dequeue rate of a weight-1 tenant while both are backlogged.
        max_queue: Most requests the tenant may have waiting (>= 1).
    """

    name: str
    weight: float = 1.0
    max_queue: int = 256

    def __post_init__(self) -> None:
        if self.weight <= 0:
            raise ValueError(f"weight must be > 0, got {self.weight}")
        if self.max_queue < 1:
            raise ValueError(f"max_queue must be >= 1, got {self.max_queue}")


@dataclass
class TenantStats:
    """Monotonic outcome counters for one tenant.

    Attributes:
        enqueued: Requests accepted into the tenant's queue.
        completed: Requests answered with a result.
        rejected_quota: Requests refused with ``OVER_QUOTA``.
        rejected_admission: Requests shed by admission control.
        deadline_exceeded: Requests answered ``DEADLINE_EXCEEDED``.
        failed: Requests that failed for any other reason.
    """

    enqueued: int = 0
    completed: int = 0
    rejected_quota: int = 0
    rejected_admission: int = 0
    deadline_exceeded: int = 0
    failed: int = 0

    def snapshot(self) -> dict:
        """Plain-dict view (for the ``stats`` protocol message)."""
        return {
            "enqueued": self.enqueued,
            "completed": self.completed,
            "rejected_quota": self.rejected_quota,
            "rejected_admission": self.rejected_admission,
            "deadline_exceeded": self.deadline_exceeded,
            "failed": self.failed,
        }


@dataclass
class _TenantState:
    """One tenant's live scheduling state."""

    config: TenantConfig
    stride: int
    pass_value: int = 0
    queue: list = field(default_factory=list)
    head: int = 0  # pop index into queue (amortized O(1) FIFO)
    stats: TenantStats = field(default_factory=TenantStats)

    @property
    def backlog(self) -> int:
        return len(self.queue) - self.head

    def pop(self):
        item = self.queue[self.head]
        self.queue[self.head] = None  # drop the reference for GC
        self.head += 1
        if self.head > 64 and self.head * 2 >= len(self.queue):
            del self.queue[: self.head]
            self.head = 0
        return item


class FairShareScheduler:
    """Stride-scheduled, quota-bounded request queues, one per tenant.

    Args:
        tenants: Optional iterable of :class:`TenantConfig` to pre-register.
        default_weight: Weight given to tenants first seen on the wire.
        default_max_queue: Queue quota for auto-registered tenants.
        auto_register: Whether unknown tenant names are accepted (with the
            defaults above) or rejected with :class:`KeyError`.
    """

    def __init__(
        self,
        tenants: Iterable[TenantConfig] | None = None,
        *,
        default_weight: float = 1.0,
        default_max_queue: int = 256,
        auto_register: bool = True,
    ) -> None:
        if default_weight <= 0:
            raise ValueError(f"default_weight must be > 0, got {default_weight}")
        self._tenants: dict[str, _TenantState] = {}
        self._default_weight = default_weight
        self._default_max_queue = default_max_queue
        self._auto_register = auto_register
        self._virtual_time = 0
        self._pending = 0
        for config in tenants or ():
            self.register(config)

    # ------------------------------------------------------------------
    # Registration / introspection
    # ------------------------------------------------------------------
    def register(self, config: TenantConfig) -> None:
        """Add (or replace the policy of) one tenant."""
        state = self._tenants.get(config.name)
        stride = max(1, round(_STRIDE_SCALE / config.weight))
        if state is None:
            self._tenants[config.name] = _TenantState(
                config=config, stride=stride, pass_value=self._virtual_time
            )
        else:
            state.config = config
            state.stride = stride

    def _state_for(self, tenant: str) -> _TenantState:
        state = self._tenants.get(tenant)
        if state is None:
            if not self._auto_register:
                raise KeyError(f"unknown tenant {tenant!r}")
            self.register(
                TenantConfig(
                    name=tenant,
                    weight=self._default_weight,
                    max_queue=self._default_max_queue,
                )
            )
            state = self._tenants[tenant]
        return state

    @property
    def pending(self) -> int:
        """Total requests waiting across every tenant."""
        return self._pending

    def tenant_names(self) -> list[str]:
        """Registered tenant names, sorted."""
        return sorted(self._tenants)

    def weight_of(self, tenant: str) -> float:
        """The tenant's configured weight (KeyError when unknown)."""
        return self._tenants[tenant].config.weight

    def stats_of(self, tenant: str) -> TenantStats:
        """The tenant's live outcome counters (KeyError when unknown)."""
        return self._tenants[tenant].stats

    def touch(self, tenant: str) -> TenantStats:
        """The tenant's counters, registering it first when unseen.

        Outcome accounting must work even for a tenant whose first-ever
        request never reaches :meth:`enqueue` (e.g. shed on arrival with
        an already-expired deadline).  Raises KeyError when the tenant is
        unknown and ``auto_register`` is off.
        """
        return self._state_for(tenant).stats

    def snapshot(self) -> dict:
        """Per-tenant policy + counters (for the ``stats`` message)."""
        return {
            name: {
                "weight": state.config.weight,
                "max_queue": state.config.max_queue,
                "waiting": state.backlog,
                **state.stats.snapshot(),
            }
            for name, state in sorted(self._tenants.items())
        }

    # ------------------------------------------------------------------
    # Queue operations (event-loop thread only)
    # ------------------------------------------------------------------
    def enqueue(self, tenant: str, item) -> None:
        """Append ``item`` to the tenant's queue.

        Raises:
            QuotaExceeded: When the tenant is at its ``max_queue`` bound.
            KeyError: Unknown tenant with ``auto_register`` off.
        """
        state = self._state_for(tenant)
        if state.backlog >= state.config.max_queue:
            state.stats.rejected_quota += 1
            raise QuotaExceeded(tenant, state.config.max_queue)
        if state.backlog == 0:
            # Re-activating after idle: no banked credit from the past.
            state.pass_value = max(state.pass_value, self._virtual_time)
        state.queue.append(item)
        state.stats.enqueued += 1
        self._pending += 1

    def take_one(self):
        """Dequeue the next item in weighted fair order.

        Returns ``(tenant_name, item)``, or ``None`` when every queue is
        empty.
        """
        chosen: _TenantState | None = None
        for state in self._tenants.values():
            if state.backlog == 0:
                continue
            if chosen is None or state.pass_value < chosen.pass_value:
                chosen = state
        if chosen is None:
            return None
        self._virtual_time = chosen.pass_value
        chosen.pass_value += chosen.stride
        self._pending -= 1
        return chosen.config.name, chosen.pop()

    def earliest_deadline(self):
        """The soonest ``deadline`` attribute among queued items, or None.

        Items without a ``deadline`` attribute (or with it set to None)
        do not constrain the result.  Used by the micro-batcher to avoid
        sleeping a batching tick past a queued request's deadline.
        """
        earliest = None
        for state in self._tenants.values():
            for position in range(state.head, len(state.queue)):
                deadline = getattr(state.queue[position], "deadline", None)
                if deadline is None:
                    continue
                if earliest is None or deadline.expires_at < earliest.expires_at:
                    earliest = deadline
        return earliest
