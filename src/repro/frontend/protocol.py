"""Length-prefixed JSON wire protocol for the serving front door.

One frame is a 4-byte big-endian unsigned length followed by exactly that
many bytes of UTF-8 JSON.  JSON keeps the protocol debuggable (``nc`` plus
``printf`` can speak it) and still round-trips query results *bitwise*:
``float`` serialization uses ``repr``, which is exact for every finite
IEEE-754 double, and ``allow_nan=False`` rejects the values that would
not survive the trip.

Messages are versioned dicts.  Requests carry::

    {"v": 1, "type": "query", "id": 7, "tenant": "acme",
     "deadline_ms": 50.0, "vector": [...], "lo": 0.2, "hi": 0.8,
     "k": 10, "l_budget": null}

with ``type`` one of :data:`REQUEST_TYPES` (``query`` / ``insert`` /
``delete`` / ``stats``).  Responses echo the request ``id``::

    {"v": 1, "id": 7, "ok": true,  "result": {...}}
    {"v": 1, "id": 7, "ok": false, "code": "DEADLINE_EXCEEDED",
     "error": "..."}

Structured error codes (:data:`ERROR_CODES`) are the machine-readable
half of every failure; the ``error`` string is advisory.  Framing or
validation problems raise :class:`ProtocolError`, which carries the code
to respond with.

The same framing serves two transports: the async front door
(:func:`read_frame` over asyncio streams) and the blocking-socket
twins :func:`send_frame` / :func:`recv_frame`, which the cluster
replication stream (:mod:`repro.cluster`) speaks from plain threads.
"""

from __future__ import annotations

import asyncio
import json
import struct
from typing import Sequence

__all__ = [
    "PROTOCOL_VERSION",
    "MAX_FRAME_BYTES",
    "REQUEST_TYPES",
    "ERROR_CODES",
    "ProtocolError",
    "encode_frame",
    "decode_frame",
    "read_frame",
    "send_frame",
    "recv_frame",
    "ok_response",
    "error_response",
    "validate_request",
]

#: Current wire version; mismatches are rejected with UNSUPPORTED_VERSION.
PROTOCOL_VERSION = 1

#: Hard ceiling on one frame's JSON payload (defends both sides against a
#: corrupt or hostile length prefix).
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: The request message types the server understands.
REQUEST_TYPES = ("query", "insert", "delete", "stats")

#: Every structured error code a response may carry.
ERROR_CODES = (
    "BAD_REQUEST",          # malformed frame, field, or value
    "UNSUPPORTED_VERSION",  # protocol version mismatch
    "UNKNOWN_TYPE",         # type not in REQUEST_TYPES
    "OVER_QUOTA",           # tenant queue quota exhausted
    "ADMISSION_REJECTED",   # shed by the service's admission controller
    "DEADLINE_EXCEEDED",    # client deadline elapsed before completion
    "SHUTTING_DOWN",        # server is draining; retry elsewhere
    "INTERNAL",             # unexpected server-side failure
)

_HEADER = struct.Struct("!I")


class ProtocolError(RuntimeError):
    """A frame or request that violates the protocol.

    Attributes:
        code: The structured error code to answer with (one of
            :data:`ERROR_CODES`).
    """

    def __init__(self, code: str, message: str) -> None:
        if code not in ERROR_CODES:
            raise ValueError(f"unknown error code {code!r}")
        super().__init__(message)
        self.code = code


def encode_frame(message: dict) -> bytes:
    """Serialize one message dict into a length-prefixed frame."""
    payload = json.dumps(
        message, separators=(",", ":"), allow_nan=False
    ).encode("utf-8")
    if len(payload) > MAX_FRAME_BYTES:
        raise ProtocolError(
            "BAD_REQUEST",
            f"frame of {len(payload)} bytes exceeds {MAX_FRAME_BYTES}",
        )
    return _HEADER.pack(len(payload)) + payload


def decode_frame(payload: bytes) -> dict:
    """Parse one frame's JSON payload (header already stripped)."""
    try:
        message = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise ProtocolError("BAD_REQUEST", f"undecodable frame: {error}")
    if not isinstance(message, dict):
        raise ProtocolError(
            "BAD_REQUEST", f"frame must be a JSON object, got {type(message).__name__}"
        )
    return message


async def read_frame(reader: asyncio.StreamReader) -> dict | None:
    """Read one complete frame; ``None`` on clean EOF between frames.

    Raises:
        ProtocolError: On a truncated frame or an oversized length prefix
            (the connection should be closed — framing sync is lost).
    """
    try:
        header = await reader.readexactly(_HEADER.size)
    except asyncio.IncompleteReadError as error:
        if not error.partial:
            return None
        raise ProtocolError("BAD_REQUEST", "truncated frame header")
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "BAD_REQUEST",
            f"frame length {length} exceeds {MAX_FRAME_BYTES}",
        )
    try:
        payload = await reader.readexactly(length)
    except asyncio.IncompleteReadError:
        raise ProtocolError("BAD_REQUEST", "truncated frame payload")
    return decode_frame(payload)


def send_frame(sock, message: dict) -> None:
    """Send one frame over a blocking socket (sync twin of the streams).

    Args:
        sock: Anything with ``sendall(bytes)`` (a connected
            ``socket.socket``).
    """
    sock.sendall(encode_frame(message))


def _recv_exactly(sock, count: int, *, allow_eof: bool = False) -> bytes | None:
    """Read exactly ``count`` bytes from a blocking socket.

    Returns ``None`` on a clean EOF before any byte arrived (only when
    ``allow_eof``); raises :class:`ProtocolError` on a mid-read EOF —
    framing sync is lost and the connection should be closed.
    """
    chunks = bytearray()
    while len(chunks) < count:
        chunk = sock.recv(count - len(chunks))
        if not chunk:
            if allow_eof and not chunks:
                return None
            raise ProtocolError("BAD_REQUEST", "truncated frame")
        chunks += chunk
    return bytes(chunks)


def recv_frame(sock) -> dict | None:
    """Receive one complete frame from a blocking socket.

    ``None`` on clean EOF between frames, mirroring :func:`read_frame`.

    Raises:
        ProtocolError: On a truncated frame or an oversized length
            prefix.
    """
    header = _recv_exactly(sock, _HEADER.size, allow_eof=True)
    if header is None:
        return None
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            "BAD_REQUEST",
            f"frame length {length} exceeds {MAX_FRAME_BYTES}",
        )
    return decode_frame(_recv_exactly(sock, length))


def ok_response(request_id: int | None, result: dict) -> dict:
    """A success response echoing ``request_id``."""
    return {"v": PROTOCOL_VERSION, "id": request_id, "ok": True, "result": result}


def error_response(request_id: int | None, code: str, message: str) -> dict:
    """An error response with a structured code."""
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    return {
        "v": PROTOCOL_VERSION,
        "id": request_id,
        "ok": False,
        "code": code,
        "error": message,
    }


def _require_number(message: dict, field: str) -> float:
    value = message.get(field)
    if not isinstance(value, (int, float)) or isinstance(value, bool):
        raise ProtocolError(
            "BAD_REQUEST", f"field {field!r} must be a number, got {value!r}"
        )
    return float(value)


def _require_vector(message: dict) -> Sequence[float]:
    vector = message.get("vector")
    if (
        not isinstance(vector, list)
        or not vector
        or not all(
            isinstance(v, (int, float)) and not isinstance(v, bool)
            for v in vector
        )
    ):
        raise ProtocolError(
            "BAD_REQUEST", "field 'vector' must be a non-empty number list"
        )
    return vector


def validate_request(message: dict) -> dict:
    """Validate one inbound request and return its normalized form.

    The normalized dict always carries ``type``, ``id``, ``tenant``
    (defaulted to ``"default"``), and ``deadline_ms`` (``None`` when the
    client set no deadline), plus the per-type payload fields coerced to
    plain Python types.

    Raises:
        ProtocolError: Carrying the error code to respond with.
    """
    version = message.get("v", PROTOCOL_VERSION)
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            "UNSUPPORTED_VERSION",
            f"protocol version {version!r} unsupported (speak {PROTOCOL_VERSION})",
        )
    rtype = message.get("type")
    if rtype not in REQUEST_TYPES:
        raise ProtocolError(
            "UNKNOWN_TYPE", f"unknown request type {rtype!r}"
        )
    request_id = message.get("id")
    if not isinstance(request_id, int) or isinstance(request_id, bool):
        raise ProtocolError("BAD_REQUEST", "field 'id' must be an integer")
    tenant = message.get("tenant", "default")
    if not isinstance(tenant, str) or not tenant:
        raise ProtocolError(
            "BAD_REQUEST", "field 'tenant' must be a non-empty string"
        )
    deadline_ms = message.get("deadline_ms")
    if deadline_ms is not None:
        if (
            not isinstance(deadline_ms, (int, float))
            or isinstance(deadline_ms, bool)
            or deadline_ms < 0
        ):
            raise ProtocolError(
                "BAD_REQUEST", "field 'deadline_ms' must be a number >= 0"
            )
        deadline_ms = float(deadline_ms)
    normalized: dict = {
        "type": rtype,
        "id": request_id,
        "tenant": tenant,
        "deadline_ms": deadline_ms,
    }
    if rtype == "query":
        normalized["vector"] = _require_vector(message)
        normalized["lo"] = _require_number(message, "lo")
        normalized["hi"] = _require_number(message, "hi")
        k = message.get("k")
        if not isinstance(k, int) or isinstance(k, bool) or k < 1:
            raise ProtocolError("BAD_REQUEST", "field 'k' must be an int >= 1")
        normalized["k"] = k
        l_budget = message.get("l_budget")
        if l_budget is not None and (
            not isinstance(l_budget, int)
            or isinstance(l_budget, bool)
            or l_budget < 1
        ):
            raise ProtocolError(
                "BAD_REQUEST", "field 'l_budget' must be an int >= 1 or null"
            )
        normalized["l_budget"] = l_budget
    elif rtype == "insert":
        oid = message.get("oid")
        if not isinstance(oid, int) or isinstance(oid, bool):
            raise ProtocolError("BAD_REQUEST", "field 'oid' must be an integer")
        normalized["oid"] = oid
        normalized["vector"] = _require_vector(message)
        normalized["attr"] = _require_number(message, "attr")
    elif rtype == "delete":
        oid = message.get("oid")
        if not isinstance(oid, int) or isinstance(oid, bool):
            raise ProtocolError("BAD_REQUEST", "field 'oid' must be an integer")
        normalized["oid"] = oid
    return normalized
