"""Exact brute-force range-filtered index.

Serves two roles: the ground-truth oracle for dynamic test scenarios (it is
exact by construction, including after arbitrary updates), and the
"range-first + linear scan over raw vectors" lower bound that VBase falls
back to at low selectivity.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.results import QueryResult, QueryStats
from .base import BatchSearchMixin
from ..quantization import squared_l2

__all__ = ["BruteForceRangeIndex"]


class BruteForceRangeIndex(BatchSearchMixin):
    """Exact range-filtered k-NN over raw vectors with dynamic updates.

    Storage is a growable row store with a free list, so inserts and deletes
    are ``O(1)`` (plus the vector copy) and queries are one vectorized scan.
    """

    def __init__(self, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self.dim = dim
        self._vectors = np.empty((0, dim), dtype=np.float64)
        self._attrs = np.empty(0, dtype=np.float64)
        self._row_of: dict[int, int] = {}
        self._oid_of_row = np.empty(0, dtype=np.int64)
        self._free_rows: list[int] = []

    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        attrs: Sequence[float],
        *,
        ids: Sequence[int] | None = None,
    ) -> "BruteForceRangeIndex":
        """Bulk-build from a dataset (IDs default to ``0..n-1``)."""
        vectors = np.asarray(vectors, dtype=np.float64)
        index = cls(vectors.shape[1])
        if ids is None:
            ids = range(len(vectors))
        for oid, vector, attr in zip(ids, vectors, attrs):
            index.insert(oid, vector, attr)
        return index

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def _grow(self) -> None:
        capacity = len(self._oid_of_row)
        if len(self._row_of) < capacity:
            return
        new_capacity = max(16, 2 * capacity)
        grown = np.empty((new_capacity, self.dim), dtype=np.float64)
        grown[:capacity] = self._vectors
        self._vectors = grown
        self._attrs = np.concatenate(
            [self._attrs, np.full(new_capacity - capacity, np.nan)]
        )
        self._oid_of_row = np.concatenate(
            [self._oid_of_row, np.full(new_capacity - capacity, -1, dtype=np.int64)]
        )
        self._free_rows.extend(range(new_capacity - 1, capacity - 1, -1))

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object (KeyError if the ID is present)."""
        if oid in self._row_of:
            raise KeyError(f"object {oid} already present")
        vector = np.asarray(vector, dtype=np.float64)
        if vector.shape != (self.dim,):
            raise ValueError(f"expected vector of shape ({self.dim},)")
        self._grow()
        row = self._free_rows.pop()
        self._vectors[row] = vector
        self._attrs[row] = float(attr)
        self._row_of[oid] = row
        self._oid_of_row[row] = oid

    def delete(self, oid: int) -> None:
        """Delete one object (KeyError if absent)."""
        row = self._row_of.pop(oid)
        self._attrs[row] = np.nan  # NaN never satisfies a range predicate
        self._oid_of_row[row] = -1
        self._free_rows.append(row)

    def query(
        self, query_vector: np.ndarray, lo: float, hi: float, k: int
    ) -> QueryResult:
        """Exact top-``k`` among objects with attribute in ``[lo, hi]``."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        stats = QueryStats()
        mask = (self._attrs >= lo) & (self._attrs <= hi)
        rows = np.flatnonzero(mask)
        stats.num_in_range = len(rows)
        stats.num_candidates = len(rows)
        if len(rows) == 0:
            return QueryResult.empty(stats)
        distances = squared_l2(self._vectors[rows], np.asarray(query_vector))
        ids = self._oid_of_row[rows]
        k = min(k, len(rows))
        part = (
            np.argpartition(distances, k - 1)[:k]
            if k < len(distances)
            else np.arange(len(distances))
        )
        order = part[np.lexsort((ids[part], distances[part]))]
        return QueryResult(
            ids=ids[order].astype(np.int64),
            distances=distances[order],
            stats=stats,
        )

    def check_invariants(self) -> None:
        """Verify row-map bijectivity and free-row sentinels."""
        capacity = len(self._oid_of_row)
        assert len(self._attrs) == capacity == len(self._vectors)
        assert len(self._row_of) + len(self._free_rows) == capacity, (
            "live + free rows != capacity"
        )
        free = set(self._free_rows)
        assert len(free) == len(self._free_rows), "duplicate free rows"
        for row in free:
            assert self._oid_of_row[row] == -1, f"free row {row} keeps an oid"
        for oid, row in self._row_of.items():
            assert row not in free, f"live object {oid} on a free row"
            assert self._oid_of_row[row] == oid, f"row map broken for {oid}"
            assert not np.isnan(self._attrs[row]), f"live object {oid} has NaN attr"

    def memory_bytes(self) -> int:
        """C-equivalent bytes: float32 vectors + attr + ID per object."""
        return len(self) * (4 * self.dim + 8 + 4)
