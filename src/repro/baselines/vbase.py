"""VBase baseline: iterator-model search with relaxed monotonicity.

VBase (OSDI'23) unifies vector search with relational predicates through the
iterator (``Next``) model: it traverses the ANN index in approximate
nearest-first order, applies the range predicate to each traversed object,
and terminates once *relaxed monotonicity* indicates the traversal is
steadily moving away from the query — avoiding the k' guessing game of
post-filtering systems.

This reimplementation runs the iterator over the shared IVFPQ substrate
(clusters nearest-first, members ADC-sorted within a cluster — see
:meth:`repro.ivf.IVFPQIndex.iter_candidates`) and implements relaxed
monotonicity as: once ``k`` in-range results are held, stop when the median
approximate distance over the last ``window`` traversed objects exceeds the
current ``k``-th best distance.  Like the real system, a cost-based plan
switch routes very selective ranges to an attribute-index scan instead
(VBase "creates an index for attributes to expedite filtering" and uses
cost-based plan selection).
"""

from __future__ import annotations

from collections import deque
from typing import Sequence

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..ivf import IVFPQIndex
from ..quantization import squared_l2
from .base import AttributeDirectory, BatchSearchMixin

__all__ = ["VBaseIndex"]


class VBaseIndex(BatchSearchMixin):
    """Iterator-model range-filtered ANN with relaxed monotonicity.

    Args:
        ivf: A trained :class:`~repro.ivf.IVFPQIndex`.
        scan_selectivity: Coverage below which the planner chooses the
            attribute-index scan over raw vectors.
        window: Size of the sliding window used by the relaxed-monotonicity
            termination check.
        patience: Minimum traversed objects before termination may fire
            (guards the very first window).
    """

    def __init__(
        self,
        ivf: IVFPQIndex,
        *,
        scan_selectivity: float = 0.02,
        window: int = 32,
        patience: int = 64,
    ) -> None:
        if not ivf.is_trained:
            raise ValueError("IVFPQIndex must be trained before wrapping")
        if window < 1:
            raise ValueError("window must be >= 1")
        self.ivf = ivf
        self.scan_selectivity = scan_selectivity
        self.window = window
        self.patience = patience
        self.directory = AttributeDirectory()
        # VBase is a relational system: base tuples (raw vectors) live in the
        # table heap.  They back the low-selectivity scan plan and are
        # counted as data, not index, in the Fig. 8 memory model.
        self._vectors: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        attrs: Sequence[float],
        *,
        ids: Sequence[int] | None = None,
        num_subspaces: int | None = None,
        num_clusters: int | None = None,
        num_codewords: int = 256,
        seed: int | None = None,
        ivf: IVFPQIndex | None = None,
        **kwargs,
    ) -> "VBaseIndex":
        """Train the substrate and bulk-load a dataset."""
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if len(attrs) != n:
            raise ValueError(f"{n} vectors but {len(attrs)} attribute values")
        if ids is None:
            ids = range(n)
        ids = list(ids)
        if ivf is None:
            if num_subspaces is None:
                num_subspaces = max(1, dim // 4)
            ivf = IVFPQIndex(
                num_subspaces,
                num_clusters=num_clusters,
                num_codewords=num_codewords,
                seed=seed,
            )
            ivf.train(vectors)
        ivf.add(ids, vectors)
        index = cls(ivf, **kwargs)
        for oid, vector, attr in zip(ids, vectors, attrs):
            index.directory.add(oid, attr)
            index._vectors[oid] = vector
        return index

    # ------------------------------------------------------------------
    # Introspection / updates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.directory)

    def __contains__(self, oid: int) -> bool:
        return oid in self.directory

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object into heap, attribute index, and ANN index."""
        self.directory.add(oid, attr)  # raises KeyError on duplicates
        vector = np.asarray(vector, dtype=np.float64)
        self.ivf.add([oid], vector[None, :])
        self._vectors[oid] = vector.copy()

    def delete(self, oid: int) -> None:
        """Delete one object from all three structures."""
        self.directory.remove(oid)  # raises KeyError if absent
        self.ivf.remove([oid])
        del self._vectors[oid]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, query_vector: np.ndarray, lo: float, hi: float, k: int
    ) -> QueryResult:
        """Range-filtered top-``k`` with cost-based plan selection."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query_vector = np.asarray(query_vector, dtype=np.float64)
        stats = QueryStats()
        in_range = self.directory.count_in_range(lo, hi)
        stats.num_in_range = in_range
        if in_range == 0:
            return QueryResult.empty(stats)
        coverage = in_range / max(len(self), 1)
        if coverage <= self.scan_selectivity:
            return self._scan_plan(query_vector, lo, hi, k, stats)
        return self._iterator_plan(query_vector, lo, hi, k, stats)

    def _scan_plan(
        self, query: np.ndarray, lo: float, hi: float, k: int, stats: QueryStats
    ) -> QueryResult:
        """Low-selectivity plan: exact scan of the in-range raw vectors."""
        ids = self.directory.ids_in_range(lo, hi)
        vectors = np.stack([self._vectors[int(oid)] for oid in ids])
        distances = squared_l2(vectors, query)
        stats.num_candidates = len(ids)
        k = min(k, len(ids))
        part = (
            np.argpartition(distances, k - 1)[:k]
            if k < len(distances)
            else np.arange(len(distances))
        )
        order = part[np.argsort(distances[part], kind="stable")]
        return QueryResult(
            ids=ids[order].astype(np.int64), distances=distances[order], stats=stats
        )

    def _iterator_plan(
        self, query: np.ndarray, lo: float, hi: float, k: int, stats: QueryStats
    ) -> QueryResult:
        """Iterator plan: Next-driven traversal with relaxed monotonicity."""
        results: list[tuple[float, int]] = []
        worst_kept = np.inf
        recent: deque[float] = deque(maxlen=self.window)
        traversed = 0
        probed_clusters = 0
        for oid, distance in self.ivf.iter_candidates(query):
            traversed += 1
            recent.append(distance)
            attr = self.directory.attribute_of(oid)
            if lo <= attr <= hi:
                results.append((distance, oid))
                if len(results) >= k:
                    results.sort()
                    results = results[:k]
                    worst_kept = results[-1][0]
            # Relaxed monotonicity: the traversal has k answers and its
            # recent distances consistently exceed the worst kept answer.
            if (
                len(results) >= k
                and traversed >= self.patience
                and len(recent) == self.window
                and float(np.median(recent)) > worst_kept
            ):
                break
        stats.num_candidates = traversed
        stats.num_candidate_clusters = probed_clusters
        if not results:
            return QueryResult.empty(stats)
        results.sort()
        results = results[:k]
        return QueryResult(
            ids=np.asarray([oid for _, oid in results], dtype=np.int64),
            distances=np.asarray([dist for dist, _ in results]),
            stats=stats,
        )

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify heap, attribute index, and ANN index stay in lockstep."""
        self.directory.check_invariants()
        self.ivf.check_invariants()
        assert len(self.directory) == len(self._vectors) == len(self.ivf), (
            "heap, directory, and IVF disagree on object count"
        )
        for oid in self._vectors:
            assert oid in self.directory, f"heap object {oid} not in directory"
            assert oid in self.ivf, f"heap object {oid} missing from the IVF"

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Index memory: IVFPQ storage + attribute index (heap excluded)."""
        return self.ivf.memory_bytes() + self.directory.memory_bytes()
