"""Milvus-like baseline: the three range-filter strategies plus segments.

Reimplements the query strategies Sec. 2.3 attributes to Milvus, over the
shared IVFPQ substrate:

* **Strategy i — Attribute-First-Vector-Full-Scan**: binary-search the
  attribute index for the in-range IDs, then scan them all with ADC.
  Optimal at high selectivity (few objects pass the filter).
* **Strategy ii — Attribute-First-Vector-Search**: build a bitmap of
  in-range IDs and run a normal IVF probe that skips IDs outside the bitmap.
* **Strategy iii — Vector-First-Attribute-Full-Scan**: run an unfiltered
  top-``θ·k`` search and post-filter; doubles ``θ`` and retries when fewer
  than ``k`` survivors remain (the trial-and-error the paper describes).
* **AUTO**: a selectivity-based mixed strategy choosing among the three.

Two Milvus behaviours the paper calls out are also modelled:

* *Segments*: inserts are buffered in a growing segment without index
  maintenance (cheap inserts — Fig. 6); queries must brute-scan the whole
  unindexed segment (degraded queries — Exp. 1).
* *Float-stored PQ codes*: Milvus stores codes as floats, so its memory
  model charges 4 bytes per subspace instead of 1 (Fig. 8).
"""

from __future__ import annotations

import enum
from typing import Sequence

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..ivf import IVFPQIndex
from ..quantization import squared_l2
from .base import AttributeDirectory, BatchSearchMixin

__all__ = ["MilvusLikeIndex", "MilvusStrategy"]


class MilvusStrategy(enum.Enum):
    """Query strategy selector for :class:`MilvusLikeIndex`."""

    ATTR_FIRST_SCAN = "attr_first_scan"
    ATTR_FIRST_BITMAP = "attr_first_bitmap"
    VECTOR_FIRST = "vector_first"
    AUTO = "auto"


class MilvusLikeIndex(BatchSearchMixin):
    """Milvus-style range-filtered ANN over IVFPQ with segment buffering.

    Args:
        ivf: A trained :class:`~repro.ivf.IVFPQIndex`.
        strategy: Fixed strategy or :attr:`MilvusStrategy.AUTO`.
        segment_threshold: Growing-segment size at which a flush (index
            build for the segment) happens.
        theta: Over-fetch factor of strategy iii (``k' = θ·k``).
        scan_selectivity: AUTO picks strategy i below this coverage.
        bitmap_selectivity: AUTO picks strategy ii below this coverage
            (strategy iii above it).
        nprobe: Clusters probed by strategies ii/iii; defaults to 10% of K.
    """

    def __init__(
        self,
        ivf: IVFPQIndex,
        *,
        strategy: MilvusStrategy = MilvusStrategy.AUTO,
        segment_threshold: int = 2048,
        theta: float = 2.0,
        scan_selectivity: float = 0.01,
        bitmap_selectivity: float = 0.30,
        nprobe: int | None = None,
    ) -> None:
        if not ivf.is_trained:
            raise ValueError("IVFPQIndex must be trained before wrapping")
        if theta <= 1.0:
            raise ValueError(f"theta must exceed 1, got {theta}")
        if segment_threshold < 1:
            raise ValueError("segment_threshold must be >= 1")
        self.ivf = ivf
        self.strategy = strategy
        self.segment_threshold = segment_threshold
        self.theta = theta
        self.scan_selectivity = scan_selectivity
        self.bitmap_selectivity = bitmap_selectivity
        self.nprobe = nprobe or max(1, ivf.num_clusters // 10)
        self.directory = AttributeDirectory()
        #: growing segment: oid -> raw vector (unindexed until flushed)
        self._segment: dict[int, np.ndarray] = {}
        self._max_oid = -1
        self._flushes = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        attrs: Sequence[float],
        *,
        ids: Sequence[int] | None = None,
        num_subspaces: int | None = None,
        num_clusters: int | None = None,
        num_codewords: int = 256,
        seed: int | None = None,
        ivf: IVFPQIndex | None = None,
        **kwargs,
    ) -> "MilvusLikeIndex":
        """Train the substrate and load a dataset as sealed (indexed) data."""
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if len(attrs) != n:
            raise ValueError(f"{n} vectors but {len(attrs)} attribute values")
        if ids is None:
            ids = range(n)
        ids = list(ids)
        if ivf is None:
            if num_subspaces is None:
                num_subspaces = max(1, dim // 4)
            ivf = IVFPQIndex(
                num_subspaces,
                num_clusters=num_clusters,
                num_codewords=num_codewords,
                seed=seed,
            )
            ivf.train(vectors)
        ivf.add(ids, vectors)
        index = cls(ivf, **kwargs)
        for oid, attr in zip(ids, attrs):
            index.directory.add(oid, attr)
            index._max_oid = max(index._max_oid, oid)
        return index

    # ------------------------------------------------------------------
    # Introspection / updates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.directory)

    def __contains__(self, oid: int) -> bool:
        return oid in self.directory

    @property
    def segment_size(self) -> int:
        """Objects currently buffered in the growing segment."""
        return len(self._segment)

    @property
    def flush_count(self) -> int:
        """Number of segment flushes (index builds) performed."""
        return self._flushes

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Buffer the object in the growing segment (no index maintenance).

        This is what makes Milvus-style inserts cheap in Fig. 6: the
        ``O(KM)`` cluster assignment is deferred to the next flush.
        """
        self.directory.add(oid, attr)  # raises KeyError on duplicates
        self._segment[oid] = np.asarray(vector, dtype=np.float64).copy()
        self._max_oid = max(self._max_oid, oid)
        if len(self._segment) >= self.segment_threshold:
            self.flush()

    def flush(self) -> None:
        """Seal the growing segment: encode and add everything to the IVF."""
        if not self._segment:
            return
        ids = list(self._segment)
        vectors = np.stack([self._segment[oid] for oid in ids])
        self.ivf.add(ids, vectors)
        self._segment.clear()
        self._flushes += 1

    def delete(self, oid: int) -> None:
        """Delete from the segment if unflushed, otherwise from the IVF."""
        self.directory.remove(oid)  # raises KeyError if absent
        if oid in self._segment:
            del self._segment[oid]
        else:
            self.ivf.remove([oid])

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        strategy: MilvusStrategy | None = None,
    ) -> QueryResult:
        """Range-filtered top-``k`` with the configured (or given) strategy."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query_vector = np.asarray(query_vector, dtype=np.float64)
        stats = QueryStats()
        in_range = self.directory.count_in_range(lo, hi)
        stats.num_in_range = in_range
        if in_range == 0:
            return QueryResult.empty(stats)

        chosen = strategy or self.strategy
        if chosen is MilvusStrategy.AUTO:
            coverage = in_range / max(len(self), 1)
            if coverage <= self.scan_selectivity:
                chosen = MilvusStrategy.ATTR_FIRST_SCAN
            elif coverage <= self.bitmap_selectivity:
                chosen = MilvusStrategy.ATTR_FIRST_BITMAP
            else:
                chosen = MilvusStrategy.VECTOR_FIRST

        if chosen is MilvusStrategy.ATTR_FIRST_SCAN:
            ids, distances = self._attr_first_scan(query_vector, lo, hi, stats)
        elif chosen is MilvusStrategy.ATTR_FIRST_BITMAP:
            ids, distances = self._attr_first_bitmap(query_vector, lo, hi, k, stats)
        else:
            ids, distances = self._vector_first(query_vector, lo, hi, k, stats)

        seg_ids, seg_distances = self._scan_segment(query_vector, lo, hi, stats)
        ids = np.concatenate([ids, seg_ids])
        distances = np.concatenate([distances, seg_distances])
        if len(ids) == 0:
            return QueryResult.empty(stats)
        k = min(k, len(ids))
        part = (
            np.argpartition(distances, k - 1)[:k]
            if k < len(distances)
            else np.arange(len(distances))
        )
        order = part[np.argsort(distances[part], kind="stable")]
        return QueryResult(ids=ids[order], distances=distances[order], stats=stats)

    def _sealed_ids_in_range(self, lo: float, hi: float) -> np.ndarray:
        ids = self.directory.ids_in_range(lo, hi)
        if not self._segment:
            return ids
        return np.asarray(
            [oid for oid in ids.tolist() if oid not in self._segment],
            dtype=np.int64,
        )

    def _attr_first_scan(
        self, query: np.ndarray, lo: float, hi: float, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Strategy i: ADC-scan every sealed in-range object."""
        ids = self._sealed_ids_in_range(lo, hi)
        if ids.size == 0:
            return ids, np.empty(0, dtype=np.float64)
        table = self.ivf.distance_table(query)
        distances = self.ivf.adc_for_ids(table, ids.tolist())
        stats.num_candidates += len(ids)
        return ids, distances

    def _attr_first_bitmap(
        self, query: np.ndarray, lo: float, hi: float, k: int, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Strategy ii: bitmap-filtered IVF probe, escalating nprobe."""
        mask = self.directory.mask_in_range(lo, hi, self._max_oid + 1)
        nprobe = self.nprobe
        while True:
            result = self.ivf.search(query, k, nprobe=nprobe, allowed_mask=mask)
            stats.num_candidates += result.num_candidates
            stats.num_candidate_clusters = result.num_probed
            if len(result) >= k or nprobe >= self.ivf.num_clusters:
                return result.ids, result.distances
            nprobe = min(self.ivf.num_clusters, nprobe * 2)

    def _vector_first(
        self, query: np.ndarray, lo: float, hi: float, k: int, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Strategy iii: unfiltered top-``θ·k`` then post-filter, retrying."""
        fetch = max(1, int(np.ceil(self.theta * k)))
        while True:
            result = self.ivf.search(query, fetch, nprobe=self.nprobe)
            stats.num_candidates += result.num_candidates
            stats.num_candidate_clusters = result.num_probed
            keep = [
                i
                for i, oid in enumerate(result.ids.tolist())
                if lo <= self.directory.attribute_of(oid) <= hi
            ]
            exhausted = len(result) < fetch and result.num_probed >= min(
                self.ivf.num_clusters, self.nprobe
            )
            if len(keep) >= k or fetch >= len(self.ivf) or exhausted:
                return result.ids[keep], result.distances[keep]
            fetch *= 2  # trial-and-error k' escalation

    def _scan_segment(
        self, query: np.ndarray, lo: float, hi: float, stats: QueryStats
    ) -> tuple[np.ndarray, np.ndarray]:
        """Exact scan of the whole growing segment (the Milvus penalty)."""
        if not self._segment:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        ids = np.asarray(list(self._segment), dtype=np.int64)
        vectors = np.stack([self._segment[int(oid)] for oid in ids])
        stats.num_candidates += len(ids)
        attrs = np.asarray([self.directory.attribute_of(int(o)) for o in ids])
        keep = (attrs >= lo) & (attrs <= hi)
        distances = squared_l2(vectors[keep], query)
        return ids[keep], distances

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify segment/IVF partitioning against the attribute directory."""
        self.directory.check_invariants()
        self.ivf.check_invariants()
        assert len(self._segment) < self.segment_threshold, (
            "growing segment exceeded the flush threshold"
        )
        for oid in self._segment:
            assert oid in self.directory, f"segment object {oid} not in directory"
            assert oid not in self.ivf, f"object {oid} both buffered and sealed"
            assert oid <= self._max_oid, f"segment oid {oid} above max watermark"
        assert len(self._segment) + len(self.ivf) == len(self.directory), (
            "segment + sealed objects != directory size"
        )

    # ------------------------------------------------------------------
    # Memory model (float-stored PQ codes)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Fig. 8 cost model with Milvus' float codes (4 B per subspace)."""
        sealed = len(self.ivf)
        per_object = 4 * self.ivf.pq.num_subspaces + 4 + 4
        static = self.ivf.pq.codebook_bytes()
        if self.ivf.coarse is not None:
            static += self.ivf.coarse.center_bytes()
        segment = sum(4 * len(vec) for vec in self._segment.values())
        return sealed * per_object + static + segment + self.directory.memory_bytes()
