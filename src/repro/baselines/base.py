"""Common interface implemented by every range-filtered index in this repo.

RangePQ, RangePQ+ and all baselines expose the same four operations so the
experiment harness can treat them interchangeably:

* ``insert(oid, vector, attr)``
* ``delete(oid)``
* ``query(query_vector, lo, hi, k) -> QueryResult``
* ``memory_bytes() -> int``

This module also hosts the sorted attribute directory the baselines share:
Milvus keeps a B-tree / binary-searchable attribute index, VBase "creates an
index for attributes to expedite filtering", and RII receives the in-range ID
subset as query input.  :class:`AttributeDirectory` models that component
with a sorted array + bisection, supporting ``O(log n)`` range counting and
``O(output)`` range extraction.
"""

from __future__ import annotations

import bisect
from typing import Protocol, runtime_checkable

import numpy as np

from ..core.results import QueryResult

__all__ = ["RangeFilteredIndex", "BatchSearchMixin", "AttributeDirectory"]


@runtime_checkable
class RangeFilteredIndex(Protocol):
    """Structural type of every index under evaluation."""

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object under a fresh ID."""

    def delete(self, oid: int) -> None:
        """Delete one stored object."""

    def query(
        self, query_vector: np.ndarray, lo: float, hi: float, k: int
    ) -> QueryResult:
        """Range-filtered approximate top-k search."""

    def memory_bytes(self) -> int:
        """C-equivalent bytes of the index structures."""

    def __len__(self) -> int: ...


class BatchSearchMixin:
    """Uniform multi-query entry point shared by every index class.

    Mixing this in gives a class ``batch_search``, which routes through
    :func:`repro.core.batch.execute_batch`: RangePQ-family indexes (those
    with ``plan_query``) share range plans and batched ADC kernels; plain
    baselines fall back to a per-request loop that still benefits from the
    IVF-level ADC-table cache.  Results are bitwise identical to calling
    ``query`` per request.
    """

    def batch_search(
        self,
        queries: np.ndarray,
        ranges,
        k: int,
        **kwargs,
    ):
        """Answer ``(queries[i], ranges[i])`` for all ``i``; see
        :func:`repro.core.batch.execute_batch` for options and the returned
        :class:`~repro.core.batch.BatchResult`."""
        # Imported lazily: repro.core imports this module for the mixin, so
        # a module-level import of repro.core.batch here would be circular.
        from ..core.batch import execute_batch

        return execute_batch(self, queries, ranges, k, **kwargs)


class AttributeDirectory:
    """Sorted ``(attr, oid)`` directory with binary-search range access.

    Mutations keep the list sorted via bisection (``O(n)`` worst-case for the
    list shift, ``O(log n)`` to locate — the same profile as a B-tree page
    rewrite, and irrelevant next to the ``O(KM)`` cluster assignment that
    dominates insert cost in every PQ-backed method).
    """

    def __init__(self) -> None:
        self._keys: list[tuple[float, int]] = []
        self._attr_of: dict[int, float] = {}

    def __len__(self) -> int:
        return len(self._keys)

    def __contains__(self, oid: int) -> bool:
        return oid in self._attr_of

    def attribute_of(self, oid: int) -> float:
        """Attribute of a stored object (KeyError if absent)."""
        return self._attr_of[oid]

    def add(self, oid: int, attr: float) -> None:
        """Insert an object (KeyError if the ID is already present)."""
        if oid in self._attr_of:
            raise KeyError(f"object {oid} already present")
        attr = float(attr)
        bisect.insort(self._keys, (attr, oid))
        self._attr_of[oid] = attr

    def remove(self, oid: int) -> float:
        """Remove an object, returning its attribute (KeyError if absent)."""
        attr = self._attr_of.pop(oid)
        index = bisect.bisect_left(self._keys, (attr, oid))
        assert self._keys[index] == (attr, oid)
        del self._keys[index]
        return attr

    def count_in_range(self, lo: float, hi: float) -> int:
        """Number of objects with attribute in ``[lo, hi]`` (``O(log n)``)."""
        left = bisect.bisect_left(self._keys, (lo, -np.inf))
        right = bisect.bisect_right(self._keys, (hi, np.inf))
        return max(0, right - left)

    def ids_in_range(self, lo: float, hi: float) -> np.ndarray:
        """Object IDs with attribute in ``[lo, hi]``, ascending by attribute."""
        left = bisect.bisect_left(self._keys, (lo, -np.inf))
        right = bisect.bisect_right(self._keys, (hi, np.inf))
        if right <= left:
            return np.empty(0, dtype=np.int64)
        return np.asarray([oid for _, oid in self._keys[left:right]], dtype=np.int64)

    def mask_in_range(self, lo: float, hi: float, universe: int) -> np.ndarray:
        """Boolean bitmap over IDs ``[0, universe)`` marking in-range objects.

        This is the bitmap Milvus' "Attribute-First-Vector-Search" strategy
        builds before probing the ANN index.
        """
        mask = np.zeros(universe, dtype=bool)
        ids = self.ids_in_range(lo, hi)
        ids = ids[ids < universe]
        mask[ids] = True
        return mask

    def check_invariants(self) -> None:
        """Verify the sorted key list and the oid→attr map agree."""
        assert len(self._keys) == len(self._attr_of), (
            "key list and attr map disagree on size"
        )
        for earlier, later in zip(self._keys, self._keys[1:]):
            assert earlier <= later, "directory keys out of order"
        for attr, oid in self._keys:
            assert self._attr_of.get(oid) == attr, (
                f"key ({attr}, {oid}) not mirrored in the attr map"
            )

    def memory_bytes(self) -> int:
        """C-equivalent bytes: one (attr, oid) pair = 12 B per entry."""
        return 12 * len(self._keys)
