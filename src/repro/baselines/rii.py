"""RII baseline: Reconfigurable Inverted Index (Matsui et al., MM'18).

RII answers ANN queries over a *dynamically specified subset* ``S`` of the
object IDs.  For a range-filtered query it first materializes
``S = {oid : attr(oid) ∈ [lo, hi]}`` from an external, attribute-sorted
data frame, then runs the subset search of the original paper:

* if ``|S| < θ`` — linear ADC scan over ``S``;
* otherwise — probe the top-``⌈K·L/|S|⌉`` coarse clusters nearest to the
  query, collect candidates from ``cluster ∩ S`` until ``L`` IDs are found
  (or all probed clusters are exhausted), and rank them by ADC.

The *external data frame* is modelled as contiguous sorted numpy arrays that
are recopied on every update — matching both RII's actual design and the
paper's Fig. 7 observation that RII deletions pay for updating this frame.
Index reconstruction fires when the store grows past ``reconstruct_factor``
times its size at the last build (RII's answer to drift), compacting the
frame and the inverted lists.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..core.results import QueryResult, QueryStats
from .base import BatchSearchMixin
from ..ivf import IVFPQIndex

__all__ = ["RIIIndex"]


class RIIIndex(BatchSearchMixin):
    """Reconfigurable inverted index with subset (range) queries.

    Args:
        ivf: A trained :class:`~repro.ivf.IVFPQIndex`.
        l_candidates: ``L`` — the candidate budget balancing time/accuracy.
        theta: Subset size below which RII falls back to a linear scan.
        reconstruct_factor: Growth ratio triggering reconstruction.
    """

    def __init__(
        self,
        ivf: IVFPQIndex,
        *,
        l_candidates: int = 1000,
        theta: int = 64,
        reconstruct_factor: float = 2.0,
    ) -> None:
        if not ivf.is_trained:
            raise ValueError("IVFPQIndex must be trained before wrapping")
        if l_candidates < 1:
            raise ValueError("l_candidates must be >= 1")
        if theta < 0:
            raise ValueError("theta must be >= 0")
        if reconstruct_factor <= 1.0:
            raise ValueError("reconstruct_factor must exceed 1")
        self.ivf = ivf
        self.l_candidates = l_candidates
        self.theta = theta
        self.reconstruct_factor = reconstruct_factor
        # External data frame: parallel arrays sorted by (attr, oid).
        self._frame_attrs = np.empty(0, dtype=np.float64)
        self._frame_oids = np.empty(0, dtype=np.int64)
        self._size_at_build = 0
        self._reconstructions = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        vectors: np.ndarray,
        attrs: Sequence[float],
        *,
        ids: Sequence[int] | None = None,
        num_subspaces: int | None = None,
        num_clusters: int | None = None,
        num_codewords: int = 256,
        seed: int | None = None,
        ivf: IVFPQIndex | None = None,
        **kwargs,
    ) -> "RIIIndex":
        """Train the substrate and bulk-load a dataset."""
        vectors = np.asarray(vectors, dtype=np.float64)
        n, dim = vectors.shape
        if len(attrs) != n:
            raise ValueError(f"{n} vectors but {len(attrs)} attribute values")
        if ids is None:
            ids = range(n)
        ids = list(ids)
        if ivf is None:
            if num_subspaces is None:
                num_subspaces = max(1, dim // 4)
            ivf = IVFPQIndex(
                num_subspaces,
                num_clusters=num_clusters,
                num_codewords=num_codewords,
                seed=seed,
            )
            ivf.train(vectors)
        ivf.add(ids, vectors)
        index = cls(ivf, **kwargs)
        attr_array = np.asarray(attrs, dtype=np.float64)
        oid_array = np.asarray(ids, dtype=np.int64)
        order = np.lexsort((oid_array, attr_array))
        index._frame_attrs = attr_array[order]
        index._frame_oids = oid_array[order]
        index._size_at_build = n
        return index

    # ------------------------------------------------------------------
    # Introspection / updates
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self._frame_oids)

    def __contains__(self, oid: int) -> bool:
        return bool(np.any(self._frame_oids == oid))

    @property
    def reconstruction_count(self) -> int:
        """Number of reconstructions triggered by growth."""
        return self._reconstructions

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object: encode (``O(KM)``) + frame recopy (``O(n)``)."""
        self.ivf.add([oid], np.asarray(vector)[None, :])  # KeyError if dup
        attr = float(attr)
        position = int(
            np.searchsorted(self._frame_attrs, attr, side="right")
        )
        self._frame_attrs = np.insert(self._frame_attrs, position, attr)
        self._frame_oids = np.insert(self._frame_oids, position, oid)
        if len(self) > self.reconstruct_factor * max(self._size_at_build, 1):
            self._reconstruct()

    def delete(self, oid: int) -> None:
        """Delete one object: IVF removal + frame recopy (``O(n)``)."""
        positions = np.flatnonzero(self._frame_oids == oid)
        if positions.size == 0:
            raise KeyError(f"object {oid} not present")
        self.ivf.remove([oid])
        self._frame_attrs = np.delete(self._frame_attrs, positions[0])
        self._frame_oids = np.delete(self._frame_oids, positions[0])

    def _reconstruct(self) -> None:
        """Compact the frame and refresh posting lists after heavy growth.

        RII re-runs coarse assignment over the grown store; with our shared
        substrate the assignments are already maintained incrementally, so
        reconstruction reduces to re-sorting/compacting the frame — the same
        asymptotic ``O(n)`` cost, kept for fidelity of the cost profile.
        """
        order = np.lexsort((self._frame_oids, self._frame_attrs))
        self._frame_attrs = np.ascontiguousarray(self._frame_attrs[order])
        self._frame_oids = np.ascontiguousarray(self._frame_oids[order])
        self._size_at_build = len(self)
        self._reconstructions += 1

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def query(
        self, query_vector: np.ndarray, lo: float, hi: float, k: int
    ) -> QueryResult:
        """Range-filtered top-``k`` via RII subset search."""
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query_vector = np.asarray(query_vector, dtype=np.float64)
        stats = QueryStats()
        left = int(np.searchsorted(self._frame_attrs, lo, side="left"))
        right = int(np.searchsorted(self._frame_attrs, hi, side="right"))
        subset = self._frame_oids[left:right]
        stats.num_in_range = len(subset)
        if len(subset) == 0:
            return QueryResult.empty(stats)

        table = self.ivf.distance_table(query_vector)
        if len(subset) < self.theta:
            # Small-subset fallback: scan S directly.
            candidates = subset
            stats.num_candidates = len(candidates)
            distances = self.ivf.adc_for_ids(table, candidates.tolist())
        else:
            candidates, distances = self._subset_probe(
                query_vector, table, subset, stats
            )
            if len(candidates) == 0:
                return QueryResult.empty(stats)
        k = min(k, len(candidates))
        part = (
            np.argpartition(distances, k - 1)[:k]
            if k < len(distances)
            else np.arange(len(distances))
        )
        order = part[np.argsort(distances[part], kind="stable")]
        return QueryResult(
            ids=candidates[order].astype(np.int64),
            distances=distances[order],
            stats=stats,
        )

    def _subset_probe(
        self,
        query: np.ndarray,
        table: np.ndarray,
        subset: np.ndarray,
        stats: QueryStats,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Probe top-``⌈K·L/|S|⌉`` clusters, intersecting with ``S``."""
        k_clusters = self.ivf.num_clusters
        num_probe = min(
            k_clusters,
            int(np.ceil(k_clusters * self.l_candidates / len(subset))),
        )
        probed = self.ivf.coarse.nearest_centers(query, num_probe)
        stats.num_candidate_clusters = len(probed)

        universe = int(self._frame_oids.max()) + 1 if len(self) else 0
        mask = np.zeros(universe, dtype=bool)
        mask[subset[subset < universe]] = True

        chunks: list[np.ndarray] = []
        collected = 0
        for cluster in probed:
            members = self.ivf.cluster_members(int(cluster))
            if members.size == 0:
                continue
            hits = members[(members < universe)]
            hits = hits[mask[hits]]
            if hits.size == 0:
                continue
            chunks.append(hits)
            collected += hits.size
            if collected >= self.l_candidates:
                break
        if not chunks:
            return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.float64)
        candidates = np.concatenate(chunks)[: self.l_candidates]
        stats.num_candidates = len(candidates)
        distances = self.ivf.adc_for_ids(table, candidates.tolist())
        return candidates, distances

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify the sorted frame mirrors the IVF contents."""
        self.ivf.check_invariants()
        assert len(self._frame_attrs) == len(self._frame_oids), (
            "frame attr/oid arrays out of sync"
        )
        assert len(self._frame_oids) == len(self.ivf), (
            "frame and IVF disagree on object count"
        )
        for earlier, later in zip(self._frame_attrs, self._frame_attrs[1:]):
            assert earlier <= later, "frame attrs out of order"
        seen: set[int] = set()
        for oid in self._frame_oids.tolist():
            assert oid not in seen, f"object {oid} duplicated in the frame"
            seen.add(oid)
            assert oid in self.ivf, f"frame object {oid} missing from the IVF"

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """IVFPQ storage plus the external data frame (12 B per entry)."""
        return self.ivf.memory_bytes() + 12 * len(self._frame_oids)
