"""Baseline range-filtered indexes the paper compares against."""

from .base import AttributeDirectory, RangeFilteredIndex
from .bruteforce import BruteForceRangeIndex
from .milvus_like import MilvusLikeIndex, MilvusStrategy
from .rii import RIIIndex
from .vbase import VBaseIndex

__all__ = [
    "RangeFilteredIndex",
    "AttributeDirectory",
    "BruteForceRangeIndex",
    "MilvusLikeIndex",
    "MilvusStrategy",
    "RIIIndex",
    "VBaseIndex",
]
