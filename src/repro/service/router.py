"""Attribute-range sharding: scatter-gather over per-range services.

A single RangePQ tree serializes all writes behind one lock.  Sharding the
attribute domain at quantile boundaries splits the index into ``K``
independent services, so writes to different attribute regions never
contend, maintenance (rebuilds, snapshots) is shard-local and proportional
to shard size, and a range query touches only the shards its ``[lo, hi]``
interval overlaps.

The router keeps one piece of global state — the oid → shard map that
routes deletes — guarded by its own mutex; everything else delegates to
the shard services, which do their own locking.  A scattered query is
*not* a cross-shard atomic snapshot: each shard answers from its own
consistent snapshot (single-shard queries keep the full consistency
contract, and the common case — a narrow range — touches one shard).
"""

from __future__ import annotations

import bisect
import threading
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from ..core.results import QueryResult, QueryStats
from ..obs import counter, histogram, phase
from .engine import IndexService

__all__ = ["RangeShardedService", "merge_topk", "quantile_boundaries"]

_MERGE_MS = histogram("service.merge_ms")
_PARALLEL_FALLBACKS = counter("parallel.fallbacks")
_PARALLEL_QUERIES = counter("parallel.queries")


def quantile_boundaries(attrs: np.ndarray, num_shards: int) -> list[float]:
    """``num_shards - 1`` attribute-quantile split points, deduplicated.

    Duplicate quantiles (attribute mass concentrated on few values) are
    collapsed, which lowers the effective shard count rather than creating
    empty shards.
    """
    if num_shards < 1:
        raise ValueError(f"num_shards must be >= 1, got {num_shards}")
    if num_shards == 1:
        return []
    attrs = np.asarray(attrs, dtype=np.float64)
    fractions = np.arange(1, num_shards) / num_shards
    return np.unique(np.quantile(attrs, fractions)).tolist()


class RangeShardedService:
    """Scatter-gather router over attribute-range shards.

    Shard ``i`` owns attributes in ``[boundaries[i-1], boundaries[i])``
    (first shard unbounded below, last unbounded above).  Use
    :meth:`build` to construct shards from data at quantile boundaries.

    Args:
        shards: One service per shard, in boundary order (anything with
            the :class:`~repro.service.engine.IndexService` surface).
        boundaries: ``len(shards) - 1`` strictly increasing split points.
    """

    def __init__(
        self, shards: Sequence[IndexService], boundaries: Sequence[float]
    ) -> None:
        if len(boundaries) != len(shards) - 1:
            raise ValueError(
                f"{len(shards)} shards need {len(shards) - 1} boundaries, "
                f"got {len(boundaries)}"
            )
        if any(
            boundaries[i] >= boundaries[i + 1]
            for i in range(len(boundaries) - 1)
        ):
            raise ValueError("boundaries must be strictly increasing")
        self._shards = list(shards)
        self._boundaries = [float(b) for b in boundaries]
        self._map_mutex = threading.Lock()
        self._parallel_pool = None
        self._parallel_stores: list = []
        self._parallel_manifests: list = []
        self._parallel_versions: list[int] = []
        self._parallel_mutex = threading.Lock()
        self._shard_of_oid: dict[int, int] = {}
        for number, shard in enumerate(self._shards):
            for oid in shard.index.ivf.ids():
                if oid in self._shard_of_oid:
                    raise ValueError(f"oid {oid} present in two shards")
                self._shard_of_oid[oid] = number

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def build(
        cls,
        ids: Sequence[int],
        vectors: np.ndarray,
        attrs: Sequence[float],
        *,
        num_shards: int,
        index_factory: Callable[[np.ndarray, np.ndarray, np.ndarray], object],
        wal_dir: str | Path | None = None,
        **service_kwargs,
    ) -> "RangeShardedService":
        """Partition data at attribute quantiles and build one service per
        shard.

        Args:
            ids, vectors, attrs: The initial population.
            num_shards: Requested shard count (collapsed quantiles may
                yield fewer).
            index_factory: ``(ids, vectors, attrs) -> index`` building and
                training one shard's index from its partition.
            wal_dir: When given, shard ``i`` persists under
                ``wal_dir/shard-<i>``.
            **service_kwargs: Forwarded to every shard's
                :class:`IndexService`.
        """
        ids = np.asarray(ids, dtype=np.int64)
        vectors = np.asarray(vectors, dtype=np.float64)
        attrs = np.asarray(attrs, dtype=np.float64)
        boundaries = quantile_boundaries(attrs, num_shards)
        assignment = np.searchsorted(boundaries, attrs, side="right")
        shards = []
        for number in range(len(boundaries) + 1):
            members = assignment == number
            if not members.any():
                raise ValueError(
                    f"shard {number} would be empty; lower num_shards "
                    "(attribute mass is too concentrated)"
                )
            index = index_factory(
                ids[members], vectors[members], attrs[members]
            )
            kwargs = dict(service_kwargs)
            if wal_dir is not None:
                kwargs["wal_dir"] = Path(wal_dir) / f"shard-{number}"
            shards.append(IndexService(index, **kwargs))
        return cls(shards, boundaries)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shards(self) -> list[IndexService]:
        """The shard services, in boundary order."""
        return list(self._shards)

    @property
    def boundaries(self) -> list[float]:
        """The attribute split points."""
        return list(self._boundaries)

    @property
    def num_shards(self) -> int:
        return len(self._shards)

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, oid: int) -> bool:
        with self._map_mutex:
            return oid in self._shard_of_oid

    def shard_for_attr(self, attr: float) -> int:
        """Index of the shard owning attribute value ``attr``."""
        return bisect.bisect_right(self._boundaries, float(attr))

    def check_invariants(self) -> None:
        """Audit every shard plus the router's own oid → shard map."""
        for shard in self._shards:
            shard.check_invariants()
        with self._map_mutex:
            routed = dict(self._shard_of_oid)
        total = 0
        for number, shard in enumerate(self._shards):
            for oid in shard.index.ivf.ids():
                total += 1
                if routed.get(int(oid)) != number:
                    raise AssertionError(
                        f"oid {oid} lives in shard {number} but the router "
                        f"maps it to {routed.get(int(oid))}"
                    )
        if total != len(routed):
            raise AssertionError(
                f"router maps {len(routed)} oids but shards hold {total}"
            )

    # ------------------------------------------------------------------
    # Write plane (per-shard serialization)
    # ------------------------------------------------------------------
    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Route one insert to the shard owning ``attr``."""
        oid = int(oid)
        target = self.shard_for_attr(attr)
        with self._map_mutex:
            if oid in self._shard_of_oid:
                raise ValueError(f"oid {oid} already present")
            # Reserve before the shard insert so a concurrent duplicate
            # insert fails here instead of racing into another shard.
            self._shard_of_oid[oid] = target
        try:
            # Delegation: the shard service write-locks internally.
            self._shards[target].insert(oid, vector, attr)  # repro: noqa-R007
        except BaseException:  # repro: noqa-R004 - reservation rollback
            with self._map_mutex:
                self._shard_of_oid.pop(oid, None)
            raise

    def delete(self, oid: int) -> None:
        """Route one delete via the oid → shard map."""
        oid = int(oid)
        with self._map_mutex:
            if oid not in self._shard_of_oid:
                raise KeyError(f"unknown oid {oid}")
            target = self._shard_of_oid[oid]
        # Delegation: the shard service write-locks internally.
        self._shards[target].delete(oid)  # repro: noqa-R007
        with self._map_mutex:
            self._shard_of_oid.pop(oid, None)

    # ------------------------------------------------------------------
    # Read plane (scatter-gather)
    # ------------------------------------------------------------------
    def query(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
        timeout_s: float | None = None,
    ) -> QueryResult:
        """Scatter a range query to overlapping shards, merge top-``k``.

        Only shards whose attribute interval intersects ``[lo, hi]`` are
        consulted; their per-shard top-``k`` answers merge by approximate
        distance (ties broken by oid for determinism).

        Args:
            timeout_s: Remaining deadline budget for this query.  On the
                parallel backend it becomes the worker batch's per-task
                timeout, and an overrun raises :class:`TimeoutError`
                instead of silently falling back to threads (the client
                has stopped waiting; re-running serially would only burn
                capacity).  The in-process thread path has no preemption
                point, so there the budget is only checked up front.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        if timeout_s is not None and timeout_s <= 0:
            raise TimeoutError("query deadline exhausted before execution")
        first = self.shard_for_attr(lo)
        last = self.shard_for_attr(hi)
        numbers = range(first, last + 1)
        # Lock-free fast path: a stale None just takes the thread path; a
        # stale pool is re-validated under _parallel_mutex in
        # _query_parallel before use.
        if self._parallel_pool is not None:  # repro: noqa-C002
            result = self._query_parallel(
                query_vector, lo, hi, k, numbers, l_budget, timeout_s
            )
            if result is not None:
                return result
        partials = [
            self._shards[number].query(query_vector, lo, hi, k, l_budget=l_budget)
            for number in numbers
        ]
        if len(partials) == 1:
            return partials[0]
        return merge_topk(partials, k)

    # ------------------------------------------------------------------
    # Parallel read backend (multiprocess, shared memory)
    # ------------------------------------------------------------------
    def attach_parallel(
        self,
        num_workers: int = 2,
        *,
        start_method: str | None = None,
        task_timeout_s: float = 60.0,
    ):
        """Attach a multiprocess read backend over shared memory.

        Each shard's arrays are published into a
        :class:`~repro.parallel.shm.SharedIndexStore` (under the shard's
        read lock, so every published snapshot is a committed version),
        and scattered range queries execute in a
        :class:`~repro.parallel.pool.WorkerPool` instead of the calling
        thread — one task per overlapping shard, merged through the same
        top-k lexsort as the thread path.  Writes republish lazily: a
        query republishes any overlapped shard whose service version
        moved since its last publish.

        Parallel answers drain candidates from the attr-sorted shared
        layout, so under a truncating ``L`` budget they can differ from
        the thread path at the truncation boundary (both orders are
        deterministic; full-budget answers agree).  If a worker batch
        fails, the query transparently falls back to the thread path.

        Raises:
            PoolUnavailable: If the workers cannot start (nothing is
                attached in that case).
        """
        from ..parallel.pool import WorkerPool
        from ..parallel.shm import SharedIndexStore

        # Lock-free fast-fail; authoritative re-check happens under the
        # mutex below before the backend is published.
        if self._parallel_pool is not None:  # repro: noqa-C002
            raise RuntimeError("a parallel backend is already attached")
        # Spawn the pool before taking the mutex (worker startup is slow
        # and can fail); publish the backend atomically under it.
        pool = WorkerPool(
            num_workers,
            start_method=start_method,
            task_timeout_s=task_timeout_s,
        )
        with self._parallel_mutex:
            if self._parallel_pool is not None:
                pool.close()
                raise RuntimeError("a parallel backend is already attached")
            self._parallel_pool = pool
            self._parallel_stores = [
                SharedIndexStore() for _ in self._shards
            ]
            self._parallel_manifests = [None] * len(self._shards)
            self._parallel_versions = [-1] * len(self._shards)
        self._refresh_manifests(range(len(self._shards)))
        return pool

    def detach_parallel(self) -> None:
        """Stop the parallel backend and unlink its shm blocks.  Idempotent."""
        # Unpublish atomically under the mutex; close the pool and stores
        # after releasing it (close can block on an in-flight batch).
        with self._parallel_mutex:
            pool, self._parallel_pool = self._parallel_pool, None
            stores = self._parallel_stores
            self._parallel_stores = []
            self._parallel_manifests = []
            self._parallel_versions = []
        if pool is not None:
            pool.close()
        for store in stores:
            store.close()

    def _refresh_manifests(self, numbers) -> None:
        """Republish every listed shard whose committed version moved."""
        with self._parallel_mutex:
            for number in numbers:
                shard = self._shards[number]
                if shard.version != self._parallel_versions[number]:
                    manifest, version = shard.publish_shared(
                        self._parallel_stores[number]
                    )
                    self._parallel_manifests[number] = manifest
                    self._parallel_versions[number] = version

    def _query_parallel(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        numbers,
        l_budget: int | None,
        timeout_s: float | None = None,
    ) -> QueryResult | None:
        """Scatter one query across the pool; None means "use threads"."""
        from ..parallel.pool import WorkerError, WorkerTimeout

        self._refresh_manifests(numbers)
        # Snapshot the pool and manifests under the mutex so a concurrent
        # detach/republish cannot hand us a half-replaced backend; run the
        # batch after releasing it (workers must not serialize on us).
        with self._parallel_mutex:
            pool = self._parallel_pool
            if pool is None:
                return None
            manifests = [
                self._parallel_manifests[number] for number in numbers
            ]
        query = np.ascontiguousarray(query_vector, dtype=np.float64)
        tasks = [
            (
                "search",
                {
                    "manifest": manifest,
                    "query": query,
                    "lo": float(lo),
                    "hi": float(hi),
                    "k": int(k),
                    "l_budget": l_budget,
                },
            )
            for manifest in manifests
        ]
        try:
            replies = pool.run(tasks, timeout_s=timeout_s)
        except WorkerTimeout as exc:
            if timeout_s is not None:
                # An explicit deadline overran: surface it rather than
                # re-running serially for a client that stopped waiting.
                raise TimeoutError(str(exc)) from exc
            _PARALLEL_FALLBACKS.inc()
            return None
        except WorkerError:
            _PARALLEL_FALLBACKS.inc()
            return None
        _PARALLEL_QUERIES.inc()
        partials = [
            QueryResult(
                ids=reply["ids"],
                distances=reply["distances"],
                stats=reply["stats"],
            )
            for reply in replies
        ]
        if len(partials) == 1:
            return partials[0]
        return merge_topk(partials, k)

    # ------------------------------------------------------------------
    # Control plane (per-shard knobs)
    # ------------------------------------------------------------------
    def shard_knobs(self) -> list[dict]:
        """Per-shard knob snapshots (see :meth:`IndexService.knobs`)."""
        return [shard.knobs() for shard in self._shards]

    def set_shard_l_policy(self, number: int, policy) -> int:
        """Swap one shard's L policy atomically.

        Delegates to :meth:`IndexService.set_l_policy`; the shard's
        version bump makes the parallel backend republish that shard's
        manifest (which embeds the policy) before the next scattered
        query touches it, so in-process and worker answers stay
        consistent with the new knob.
        """
        return self._shards[number].set_l_policy(policy)

    # ------------------------------------------------------------------
    # Maintenance plane (shard-local)
    # ------------------------------------------------------------------
    def attach_maintenance_wakeup(self, event: threading.Event) -> None:
        """Register one wakeup event with every shard (one shared daemon)."""
        for shard in self._shards:
            shard.attach_maintenance_wakeup(event)

    def maintenance_due(self) -> bool:
        """Whether any shard has pending maintenance."""
        return any(shard.maintenance_due() for shard in self._shards)

    def run_maintenance(self, *, audit: bool | None = None) -> dict:
        """Run one maintenance cycle on every shard that needs it.

        Returns an aggregate report (``rebuilt`` / ``snapshotted`` /
        ``audited`` true if true on any shard) plus the per-shard reports.
        """
        reports = [
            shard.run_maintenance(audit=audit)
            for shard in self._shards
            if shard.maintenance_due() or audit
        ]
        return {
            "rebuilt": any(r["rebuilt"] for r in reports),
            "snapshotted": any(r["snapshotted"] for r in reports),
            "audited": any(r["audited"] for r in reports),
            "shards": reports,
        }

    def close(self) -> None:
        """Detach the parallel backend (if any) and close every shard's WAL."""
        self.detach_parallel()
        for shard in self._shards:
            shard.close()


def merge_topk(partials: Sequence[QueryResult], k: int) -> QueryResult:
    """Merge per-shard top-``k`` answers into one global top-``k``.

    Order is by approximate distance with ties broken by oid, exactly
    the ordering one un-sharded index produces — every scatter-gather
    consumer (the in-process router, the parallel executor, and the
    cluster coordinator) merges through this one function so their
    answers stay bitwise comparable.
    """
    with phase("merge", metric=_MERGE_MS):
        ids = np.concatenate([p.ids for p in partials])
        distances = np.concatenate([p.distances for p in partials])
        order = np.lexsort((ids, distances))[:k]
    stats = QueryStats()
    in_range = [p.stats.num_in_range for p in partials]
    stats.num_in_range = (
        sum(in_range) if all(n >= 0 for n in in_range) else -1
    )
    for partial in partials:
        stats.num_candidate_clusters += partial.stats.num_candidate_clusters
        stats.num_candidates += partial.stats.num_candidates
        stats.cover_nodes += partial.stats.cover_nodes
        stats.l_used = max(stats.l_used, partial.stats.l_used)
        stats.decompose_ms += partial.stats.decompose_ms
        stats.table_ms += partial.stats.table_ms
        stats.rank_ms += partial.stats.rank_ms
        stats.fetch_ms += partial.stats.fetch_ms
        stats.adc_ms += partial.stats.adc_ms
    return QueryResult(
        ids=ids[order], distances=distances[order], stats=stats
    )


#: Backwards-compatible private alias (pre-cluster name).
_merge_topk = merge_topk
