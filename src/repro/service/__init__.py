"""repro.service: the concurrent serving layer.

Turns the RangePQ / RangePQ+ library into a servable engine:

* :class:`~repro.service.engine.IndexService` — snapshot-isolated reads
  (combined through :func:`repro.core.batch.execute_batch`), serialized
  writes, deferred maintenance, WAL durability.
* :class:`~repro.service.engine.GlobalLockService` — the one-big-lock
  baseline the throughput benchmark compares against.
* :class:`~repro.service.maintenance.MaintenanceDaemon` — background
  thread paying rebuild/snapshot debt off the request path.
* :class:`~repro.service.wal.WriteAheadLog` / :func:`recover_index` —
  append-only durability and crash recovery.
* :class:`~repro.service.router.RangeShardedService` — attribute-range
  sharding with scatter-gather queries.
* :class:`~repro.service.admission.AdmissionController` — bounded queues
  with load shedding.
* :func:`~repro.service.loadgen.run_load` — closed-loop workload driver.

See ``docs/service.md`` for the architecture.
"""

from .admission import AdmissionController, AdmissionError, AdmissionStats
from .engine import GlobalLockService, IndexService, RWLock, ServiceStats
from .loadgen import LoadReport, OpStats, WorkloadSpec, run_load
from .maintenance import MaintenanceDaemon, MaintenanceStats
from .router import RangeShardedService, merge_topk, quantile_boundaries
from .wal import (
    WALError,
    WalCursor,
    WriteAheadLog,
    latest_snapshot,
    record_from_payload,
    recover_index,
)

__all__ = [
    "AdmissionController",
    "AdmissionError",
    "AdmissionStats",
    "GlobalLockService",
    "IndexService",
    "RWLock",
    "ServiceStats",
    "LoadReport",
    "OpStats",
    "WorkloadSpec",
    "run_load",
    "MaintenanceDaemon",
    "MaintenanceStats",
    "RangeShardedService",
    "merge_topk",
    "quantile_boundaries",
    "WALError",
    "WalCursor",
    "WriteAheadLog",
    "latest_snapshot",
    "record_from_payload",
    "recover_index",
]
