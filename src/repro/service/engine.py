"""The serving engine: snapshot-isolated reads over a serialized write plane.

:class:`IndexService` turns one RangePQ / RangePQ+ index into a concurrent
server with three planes:

* **Read plane** — queries run under the shared side of a writer-preferring
  reader-writer lock, so every read observes a *snapshot*: the index state
  of some committed write version, never a half-applied mutation.
  Concurrent reads are additionally *combined*: requests that arrive while
  another reader is executing are grouped and driven through
  :func:`repro.core.batch.execute_batch` in one lock acquisition, so they
  share range plans, coalesce duplicates, and hit the ADC-table cache —
  per-request results stay bitwise identical to sequential ``query`` calls
  at the same version.
* **Write plane** — inserts and deletes serialize on the exclusive side of
  the lock; each committed call bumps the service version and (when a WAL
  is attached) appends durable records *after* the in-memory apply
  succeeds, so the log never contains an op the index rejected.
* **Maintenance plane** — with ``defer_maintenance`` (default) the paper's
  lazy-deletion rebuild trigger is taken off the client's delete path: the
  index's ``auto_rebuild`` is disabled and a
  :class:`~repro.service.maintenance.MaintenanceDaemon` (or an explicit
  :meth:`run_maintenance` call) compacts, invalidates the IVF ADC-table
  caches, and snapshots in the background.

:class:`GlobalLockService` is the deliberately naive baseline — one mutex
around everything, maintenance inline — that the throughput benchmark
(``benchmarks/bench_service_throughput.py``) compares against.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

import numpy as np

from ..core.batch import BatchResult, execute_batch
from ..core.results import QueryResult
from ..obs import gauge, histogram, phase
from .admission import AdmissionController
from .wal import WriteAheadLog, recover_index

__all__ = [
    "RWLock",
    "ServiceStats",
    "IndexService",
    "GlobalLockService",
]

_READ_MS = histogram("service.read_latency_ms")
_WRITE_MS = histogram("service.write_latency_ms")
_REBUILD_MS = histogram("service.rebuild_ms")
_TABLE_HIT_RATE = gauge("cache.table.hit_rate")
_CENTER_HIT_RATE = gauge("cache.center.hit_rate")


class RWLock:
    """A writer-preferring reader-writer lock.

    Any number of readers may hold the lock together; a writer holds it
    alone.  Arriving writers block *new* readers (writer preference), so a
    continuous read load cannot starve the write plane.  Not reentrant.
    """

    def __init__(self) -> None:
        self._mutex = threading.Lock()
        self._readers_ok = threading.Condition(self._mutex)
        self._writers_ok = threading.Condition(self._mutex)
        self._active_readers = 0
        self._waiting_writers = 0
        self._writer_active = False

    def acquire_read(self) -> None:
        """Block until the shared side is available."""
        with self._mutex:
            while self._writer_active or self._waiting_writers:
                self._readers_ok.wait()
            self._active_readers += 1

    def release_read(self) -> None:
        """Drop the shared side; wake a waiting writer when last out."""
        with self._mutex:
            self._active_readers -= 1
            if self._active_readers == 0:
                self._writers_ok.notify()

    def acquire_write(self) -> None:
        """Block until the exclusive side is available."""
        with self._mutex:
            self._waiting_writers += 1
            try:
                while self._writer_active or self._active_readers:
                    self._writers_ok.wait()
            finally:
                self._waiting_writers -= 1
            self._writer_active = True

    def release_write(self) -> None:
        """Drop the exclusive side; writers drain before readers re-enter."""
        with self._mutex:
            self._writer_active = False
            if self._waiting_writers:
                self._writers_ok.notify()
            else:
                self._readers_ok.notify_all()

    def read_locked(self):
        """Context manager holding the shared side."""
        return _LockContext(self.acquire_read, self.release_read)

    def write_locked(self):
        """Context manager holding the exclusive side."""
        return _LockContext(self.acquire_write, self.release_write)


class _LockContext:
    __slots__ = ("_acquire", "_release")

    def __init__(self, acquire, release) -> None:
        self._acquire = acquire
        self._release = release

    def __enter__(self):
        self._acquire()
        return self

    def __exit__(self, *exc_info):
        self._release()
        return False


@dataclass
class ServiceStats:
    """Monotonic counters describing one service's lifetime traffic.

    Attributes:
        reads: Read requests answered (one per query, batched or not).
        read_batches: Combined-read batches executed (lock acquisitions on
            the read plane via the combiner).
        writes: Committed write calls (each bumped the version once).
        maintenance_runs: Background/explicit maintenance cycles that did
            work (rebuild and/or snapshot).
        rebuilds: Index compactions run by the maintenance plane.
        snapshots: WAL snapshots written.
        audits: ``check_invariants`` audits run by the maintenance plane.
    """

    reads: int = 0
    read_batches: int = 0
    writes: int = 0
    maintenance_runs: int = 0
    rebuilds: int = 0
    snapshots: int = 0
    audits: int = 0
    _mutex: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def bump(self, **deltas: int) -> None:
        """Atomically add the given deltas to the named counters."""
        with self._mutex:
            for name, delta in deltas.items():
                setattr(self, name, getattr(self, name) + delta)


class _PendingRead:
    """One in-flight read request parked in the combiner."""

    __slots__ = (
        "vector",
        "lo",
        "hi",
        "k",
        "l_budget",
        "event",
        "result",
        "version",
        "error",
    )

    def __init__(self, vector, lo, hi, k, l_budget) -> None:
        self.vector = vector
        self.lo = lo
        self.hi = hi
        self.k = k
        self.l_budget = l_budget
        self.event = threading.Event()
        self.result: QueryResult | None = None
        self.version = -1
        self.error: BaseException | None = None


class _ReadCombiner:
    """Group concurrent read requests into shared-plan batches.

    The first thread to arrive while no batch is running becomes the
    *leader*: it drains everything pending (itself included), executes the
    group through ``execute_batch`` under a single read-lock acquisition,
    and publishes each request's result.  Followers wait on their event.
    Once the leader's own request is answered it *hands leadership off* to
    the oldest still-pending follower instead of serving forever, so under
    sustained closed-loop load every thread leads at most one round and no
    caller is starved.  Natural batching — whatever piles up while a batch
    executes forms the next batch — costs no artificial delay when
    uncontended.
    """

    def __init__(self, runner, *, max_batch: int = 64) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        self._runner = runner
        self._max_batch = max_batch
        self._mutex = threading.Lock()
        self._pending: list[_PendingRead] = []
        self._leader_active = False

    def submit(self, request: _PendingRead) -> _PendingRead:
        """Enqueue one request and block until its result is published."""
        with self._mutex:
            self._pending.append(request)
            lead = not self._leader_active
            if lead:
                self._leader_active = True
        while True:
            if lead:
                self._lead(request)
                break
            request.event.wait()
            if request.result is not None or request.error is not None:
                break
            # Woken without a result: leadership takeover.
            request.event.clear()
            lead = True
        if request.error is not None:
            raise request.error
        return request

    def _lead(self, own: _PendingRead) -> None:
        """Serve batches until ``own`` is answered, then hand off."""
        while True:
            with self._mutex:
                batch = self._pending[: self._max_batch]
                del self._pending[: len(batch)]
            if batch:
                try:
                    self._runner(batch)
                finally:
                    for request in batch:
                        request.event.set()
            if own.result is not None or own.error is not None:
                with self._mutex:
                    if self._pending:
                        # Promote the oldest pending follower: its event is
                        # set with no result, which its submit loop reads
                        # as "you are the leader now".
                        self._pending[0].event.set()
                    else:
                        self._leader_active = False
                return


class IndexService:
    """Concurrent serving wrapper around one range-filtered index.

    Args:
        index: A populated RangePQ / RangePQ+ (any object with the common
            ``insert/delete/query`` interface works for serving; WAL
            snapshots additionally require :func:`repro.io.save_index`
            support, and deferred maintenance requires the index to expose
            ``auto_rebuild`` / ``maintenance_due`` / ``run_maintenance``).
        wal_dir: Directory for durability (write-ahead log + snapshots).
            When given, an initial snapshot is written if the directory has
            none, so recovery always has a base state.
        fsync: Fsync the WAL after every append (durable against power
            loss, not just process crash).
        admission: Optional :class:`AdmissionController` bounding in-flight
            requests; rejected requests raise
            :class:`~repro.service.admission.AdmissionError` instead of
            queueing unboundedly.
        defer_maintenance: Take the rebuild trigger off the delete path
            (see module docstring).  Requires a maintenance daemon or
            periodic :meth:`run_maintenance` calls to pay the debt.
        snapshot_every: Write a WAL snapshot after this many committed
            writes (checked by the maintenance plane); ``None`` disables
            periodic snapshots.
        max_batch: Largest combined read batch.
        read_only: Replica apply mode — the public write plane
            (``insert``/``delete`` and friends) raises, and state only
            advances through :meth:`apply_records`, fed by a replication
            stream of another service's WAL records.  Reads keep the
            full snapshot-isolation contract.  Incompatible with
            ``wal_dir``: a replica replays someone else's log rather
            than owning one.
    """

    def __init__(
        self,
        index,
        *,
        wal_dir: str | Path | None = None,
        fsync: bool = False,
        admission: AdmissionController | None = None,
        defer_maintenance: bool = True,
        snapshot_every: int | None = None,
        max_batch: int = 64,
        read_only: bool = False,
    ) -> None:
        if read_only and wal_dir is not None:
            raise ValueError(
                "a read-only (replica) service cannot own a WAL; it "
                "applies shipped records from the primary's log instead"
            )
        self._read_only = bool(read_only)
        self._index = index
        self._lock = RWLock()
        self._version = 0
        self._admission = admission
        self._snapshot_every = snapshot_every
        self._writes_since_snapshot = 0
        self._maintenance_wakeup: threading.Event | None = None
        self._closed = False
        self.stats = ServiceStats()
        self._combiner = _ReadCombiner(
            self._execute_read_batch, max_batch=max_batch
        )
        if defer_maintenance and hasattr(index, "auto_rebuild"):
            index.auto_rebuild = False
        self._wal: WriteAheadLog | None = None
        if wal_dir is not None:
            self._wal = WriteAheadLog(wal_dir, fsync=fsync)
            if self._wal.latest_snapshot_seq() is None:
                self._wal.write_snapshot(index)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def index(self):
        """The wrapped index (do not mutate outside the service).

        Lock-free read of the reference: the binding never changes after
        construction; only the object's *contents* are lock-guarded.
        """
        return self._index  # repro: noqa-C002

    @property
    def wal(self) -> WriteAheadLog | None:
        """The attached write-ahead log, if any."""
        return self._wal

    @property
    def read_only(self) -> bool:
        """Whether this service is in replica apply mode."""
        return self._read_only

    @property
    def version(self) -> int:
        """Number of committed writes (the snapshot version readers see).

        Lock-free monitoring read: int loads are atomic under the GIL and
        a slightly stale version is fine for observers.
        """
        return self._version  # repro: noqa-C002

    def __len__(self) -> int:
        with self._lock.read_locked():
            return len(self._index)

    def __contains__(self, oid: int) -> bool:
        with self._lock.read_locked():
            return oid in self._index

    def memory_bytes(self) -> int:
        """C-equivalent bytes of the wrapped index."""
        with self._lock.read_locked():
            return self._index.memory_bytes()

    def check_invariants(self) -> None:
        """Audit the wrapped index under the read lock (snapshot-safe)."""
        with self._lock.read_locked():
            self._index.check_invariants()

    # ------------------------------------------------------------------
    # Read plane
    # ------------------------------------------------------------------
    def query(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
    ) -> QueryResult:
        """Range-filtered top-``k`` query against a consistent snapshot."""
        return self.query_versioned(
            query_vector, lo, hi, k, l_budget=l_budget
        )[0]

    def query_versioned(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
    ) -> tuple[QueryResult, int]:
        """Like :meth:`query`, also returning the snapshot version read.

        The result is exactly what ``index.query`` would return at that
        version — the consistency contract the stress tests verify against
        a serial oracle.
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        vector = np.asarray(query_vector, dtype=np.float64)
        with phase("service_read", metric=_READ_MS):
            with self._admit("read"):
                request = _PendingRead(
                    vector, float(lo), float(hi), k, l_budget
                )
                self._combiner.submit(request)
        assert request.result is not None
        return request.result, request.version

    def query_batch(
        self,
        queries: np.ndarray,
        ranges: Sequence[tuple[float, float]],
        k: int,
        *,
        l_budget: int | None = None,
    ) -> BatchResult:
        """Answer a caller-assembled batch under one snapshot."""
        with phase("service_read", metric=_READ_MS):
            with self._admit("read"), self._lock.read_locked():
                result = execute_batch(
                    self._index, queries, ranges, k, l_budget=l_budget
                )
        self.stats.bump(reads=len(result), read_batches=1)
        return result

    def _execute_read_batch(self, batch: list[_PendingRead]) -> None:
        """Run one combined batch under a single read-lock acquisition."""
        try:
            with self._lock.read_locked():
                version = self._version
                # execute_batch takes one (k, l_budget) per call, so the
                # combined batch is partitioned into parameter groups; all
                # groups run under the same lock hold => same snapshot.
                groups: dict[tuple[int, int | None], list[int]] = {}
                for position, request in enumerate(batch):
                    groups.setdefault(
                        (request.k, request.l_budget), []
                    ).append(position)
                for (k, l_budget), positions in groups.items():
                    queries = np.asarray(
                        [batch[i].vector for i in positions], dtype=np.float64
                    )
                    ranges = [(batch[i].lo, batch[i].hi) for i in positions]
                    result = execute_batch(
                        self._index, queries, ranges, k, l_budget=l_budget
                    )
                    for request_index, query_result in zip(
                        positions, result.results
                    ):
                        batch[request_index].result = query_result
                        batch[request_index].version = version
        except BaseException as error:  # repro: noqa-R004 - republished
            # Any failure must reach every parked caller, not the combiner.
            for request in batch:
                if request.result is None:
                    request.error = error
            return
        self.stats.bump(reads=len(batch), read_batches=1)

    # ------------------------------------------------------------------
    # Write plane (serialized)
    # ------------------------------------------------------------------
    def _check_writable(self) -> None:
        if self._read_only:
            raise RuntimeError(
                "service is read-only (replica apply mode); writes go to "
                "the primary and arrive here as shipped WAL records"
            )

    def apply_records(self, records: Sequence) -> int:
        """Apply replicated WAL records as one committed version step.

        The replica write path: records shipped from a primary's
        :class:`~repro.service.wal.WriteAheadLog` (in sequence order)
        are applied under the exclusive lock, so concurrent readers keep
        seeing consistent snapshots.  Nothing is re-logged — durability
        belongs to the primary; a restarted replica catches up from the
        newest snapshot plus the shipped tail.

        Args:
            records: :class:`~repro.service.wal.WalRecord`-shaped
                objects (``op``/``oid``/``attr``/``vector``).

        Returns:
            The number of records applied.

        Raises:
            RuntimeError: If this service owns a WAL (applying unlogged
                mutations would silently fork its durable history).
            ValueError: On an unknown record op.
        """
        if self._wal is not None:
            raise RuntimeError(
                "apply_records on a WAL-owning service would fork its "
                "durable history; replicas must not own a WAL"
            )
        applied = 0
        with phase("service_write", metric=_WRITE_MS):
            with self._lock.write_locked():
                for record in records:
                    if record.op == "insert":
                        self._index.insert(
                            record.oid,
                            np.asarray(record.vector, dtype=np.float64),
                            record.attr,
                        )
                    elif record.op == "delete":
                        self._index.delete(record.oid)
                    else:
                        raise ValueError(f"unknown record op {record.op!r}")
                    applied += 1
                if applied:
                    self._commit_write_unlocked()
        if applied:
            self._signal_maintenance()
        return applied

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object; durable once the call returns (WAL mode)."""
        self._check_writable()
        vector = np.asarray(vector, dtype=np.float64)
        with phase("service_write", metric=_WRITE_MS):
            with self._admit("write"):
                with self._lock.write_locked():
                    self._index.insert(oid, vector, attr)
                    if self._wal is not None:
                        self._wal.append_insert(oid, float(attr), vector)
                    self._commit_write_unlocked()
        self._signal_maintenance()

    def insert_many(
        self,
        ids: Sequence[int],
        vectors: np.ndarray,
        attrs: Sequence[float],
    ) -> None:
        """Insert a batch of objects as one committed version step."""
        self._check_writable()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        with phase("service_write", metric=_WRITE_MS):
            with self._admit("write"):
                with self._lock.write_locked():
                    self._index.insert_many(ids, vectors, attrs)
                    if self._wal is not None:
                        for oid, vector, attr in zip(ids, vectors, attrs):
                            self._wal.append_insert(
                                int(oid), float(attr), vector
                            )
                    self._commit_write_unlocked()
        self._signal_maintenance()

    def delete(self, oid: int) -> None:
        """Delete one object; durable once the call returns (WAL mode)."""
        self._check_writable()
        with phase("service_write", metric=_WRITE_MS):
            with self._admit("write"):
                with self._lock.write_locked():
                    self._index.delete(oid)
                    if self._wal is not None:
                        self._wal.append_delete(oid)
                    self._commit_write_unlocked()
        self._signal_maintenance()

    def delete_many(self, ids: Sequence[int]) -> None:
        """Delete a batch of objects as one committed version step."""
        self._check_writable()
        ids = list(ids)
        with phase("service_write", metric=_WRITE_MS):
            with self._admit("write"):
                with self._lock.write_locked():
                    self._index.delete_many(ids)
                    if self._wal is not None:
                        for oid in ids:
                            self._wal.append_delete(int(oid))
                    self._commit_write_unlocked()
        self._signal_maintenance()

    def _commit_write_unlocked(self) -> None:
        """Bump version/counters; caller must hold the write lock."""
        self._version += 1
        self._writes_since_snapshot += 1
        self.stats.bump(writes=1)

    # ------------------------------------------------------------------
    # Maintenance plane
    # ------------------------------------------------------------------
    def attach_maintenance_wakeup(self, event: threading.Event) -> None:
        """Register the daemon's wakeup event (set after every write)."""
        self._maintenance_wakeup = event

    def _signal_maintenance(self) -> None:
        wakeup = self._maintenance_wakeup
        if wakeup is not None:
            wakeup.set()

    def maintenance_due(self) -> bool:
        """Cheap, lock-free check whether the maintenance plane has work.

        May read slightly stale counters; the daemon re-validates under
        the write lock before doing anything.
        """
        # Documented lock-free read (see docstring): stale is acceptable.
        if bool(getattr(self._index, "maintenance_due", False)):  # repro: noqa-C002
            return True
        return (
            self._snapshot_every is not None
            and self._wal is not None
            and self._writes_since_snapshot >= self._snapshot_every  # repro: noqa-C002 — documented lock-free check
        )

    def run_maintenance(self, *, audit: bool | None = None) -> dict:
        """One maintenance cycle: rebuild if due, invalidate caches,
        snapshot if due, optionally audit invariants.

        Args:
            audit: Run ``check_invariants`` after the cycle; defaults to
                whether ``REPRO_SANITIZE`` is enabled.

        Returns:
            A report dict with ``rebuilt`` / ``snapshotted`` / ``audited``
            booleans.
        """
        from ..analysis.sanitize import sanitize_enabled

        if audit is None:
            audit = sanitize_enabled()
        report = {"rebuilt": False, "snapshotted": False, "audited": False}
        with self._lock.write_locked():
            if bool(getattr(self._index, "maintenance_due", False)):
                self._publish_cache_gauges_unlocked()
                with phase("rebuild", metric=_REBUILD_MS):
                    self._index.run_maintenance()
                    ivf = getattr(self._index, "ivf", None)
                    if ivf is not None and hasattr(ivf, "clear_caches"):
                        # Rebuilds change candidate enumeration, not
                        # distances, but dropping the ADC caches here bounds
                        # staleness and memory without ever touching the
                        # query path.
                        ivf.clear_caches()
                report["rebuilt"] = True
                self.stats.bump(rebuilds=1)
            else:
                self._publish_cache_gauges_unlocked()
            if audit:
                self._index.check_invariants()
                report["audited"] = True
                self.stats.bump(audits=1)
        if (
            self._snapshot_every is not None
            and self._wal is not None
            # Lock-free read after dropping the write lock: snapshot()
            # re-takes the lock and resets the counter; a stale value only
            # shifts one snapshot by a cycle.
            and self._writes_since_snapshot >= self._snapshot_every  # repro: noqa-C002
        ):
            self.snapshot()
            report["snapshotted"] = True
        if report["rebuilt"] or report["snapshotted"]:
            self.stats.bump(maintenance_runs=1)
        return report

    def _publish_cache_gauges_unlocked(self) -> None:
        """Publish the IVF cache hit-rates as gauges (maintenance plane).

        Reads the lifetime cache counters *before* any cache invalidation
        in the same cycle, so the gauges reflect served traffic rather
        than the post-clear state.
        """
        ivf = getattr(self._index, "ivf", None)
        if ivf is None or not hasattr(ivf, "cache_stats"):
            return
        stats = ivf.cache_stats()
        _TABLE_HIT_RATE.set(stats["table"].hit_rate)
        _CENTER_HIT_RATE.set(stats["center"].hit_rate)

    # ------------------------------------------------------------------
    # Control plane (knob get/set)
    # ------------------------------------------------------------------
    def knobs(self) -> dict:
        """Snapshot of the controller-managed knobs (read plane).

        Returns the current ``l_policy`` (the frozen policy object itself
        — immutable, so sharing the reference is safe) together with the
        committed version it was read at.
        """
        with self._lock.read_locked():
            return {
                "l_policy": getattr(self._index, "l_policy", None),
                "version": self._version,
            }

    def set_l_policy(self, policy) -> int:
        """Atomically swap the index's L policy (write plane).

        The whole frozen policy object is replaced under the exclusive
        lock; in-flight queries hold the shared side for their full
        execution, so each observes either the old or the new policy,
        never a torn mix.  The service version is bumped — without the
        write counters, a knob change is not a data write — so
        version-keyed consumers (the parallel backend's manifests embed
        the policy; tiered placements key on version) republish before
        serving again.

        This is the sanctioned mutation point for serving knobs: lint
        rule R013 flags direct ``l_policy`` assignment anywhere else in
        the serving layers.

        Returns:
            The new committed version.
        """
        if not hasattr(policy, "choose"):
            raise TypeError(
                f"policy must implement choose(coverage), got {policy!r}"
            )
        with self._lock.write_locked():
            self._index.l_policy = policy  # repro: noqa-R013
            self._version += 1
            return self._version

    def export_snapshot(
        self, path: str | Path, *, compressed: bool = False
    ) -> tuple[Path, int]:
        """Save the index to ``path`` under the read lock.

        Unlike :meth:`snapshot` this needs no WAL: it serves the tiered
        storage manager, which wants an *uncompressed* archive it can
        later map zero-copy with ``load_index(..., mmap_mode="r")``.

        Returns:
            ``(written_path, version)`` — the committed version the
            archive corresponds to.
        """
        from ..io import save_index

        with self._lock.read_locked():
            written = save_index(self._index, path, compressed=compressed)
            return written, self._version

    def publish_shared(self, store) -> tuple[dict, int]:
        """Publish the index into a shared-memory store (read plane).

        Runs under the read lock, so the published blocks are a
        consistent snapshot of some committed version — the version
        returned alongside the manifest.  Used by the sharded router's
        parallel backend to (re)publish a shard after writes.

        Args:
            store: A :class:`~repro.parallel.shm.SharedIndexStore`.

        Returns:
            ``(manifest, version)`` for the published snapshot.
        """
        with self._lock.read_locked():
            manifest = store.republish(self._index)
            return manifest, self._version

    def snapshot(self) -> Path:
        """Write a WAL snapshot of the current state.

        Runs under the *read* lock: writers pause, concurrent readers
        proceed, and the saved state corresponds exactly to the WAL's
        last appended sequence number.
        """
        if self._wal is None:
            raise RuntimeError("service has no WAL attached")
        with self._lock.read_locked():
            path = self._wal.write_snapshot(self._index)
            # Written under the read side on purpose: the RW lock excludes
            # writers (the only other mutators of this counter), and two
            # concurrent snapshots both storing 0 is benign.
            self._writes_since_snapshot = 0  # repro: noqa-C003
        self.stats.bump(snapshots=1)
        return path

    # ------------------------------------------------------------------
    # Durability / lifecycle
    # ------------------------------------------------------------------
    @classmethod
    def recover(cls, wal_dir: str | Path, **service_kwargs) -> "IndexService":
        """Rebuild a service from its durability directory.

        Loads the newest snapshot, replays the WAL tail, and returns a
        fresh service whose index state equals the last committed write
        before the crash.
        """
        index, _ = recover_index(wal_dir)
        return cls(index, wal_dir=wal_dir, **service_kwargs)

    def close(self) -> None:
        """Flush and close the WAL (the service stays queryable)."""
        if self._closed:
            return
        self._closed = True
        if self._wal is not None:
            self._wal.close()

    def _admit(self, kind: str):
        if self._admission is None:
            return nullcontext()
        return self._admission.admit(kind)


class GlobalLockService:
    """Baseline: one exclusive mutex around every operation.

    Reads serialize with each other and with writes; maintenance runs
    inline inside delete calls (the wrapped index keeps ``auto_rebuild``).
    Matches :class:`IndexService`'s read/write surface so the load
    generator and benchmarks can drive both interchangeably.
    """

    def __init__(
        self,
        index,
        *,
        admission: AdmissionController | None = None,
    ) -> None:
        self._index = index
        self._mutex = threading.Lock()
        self._version = 0
        self._admission = admission
        self.stats = ServiceStats()

    @property
    def index(self):
        """The wrapped index (do not mutate outside the service).

        Lock-free read: the binding never changes after construction.
        """
        return self._index  # repro: noqa-C002

    @property
    def version(self) -> int:
        """Number of committed writes (lock-free monitoring read; int
        loads are atomic under the GIL and staleness is acceptable)."""
        return self._version  # repro: noqa-C002

    def __len__(self) -> int:
        with self._mutex:
            return len(self._index)

    def __contains__(self, oid: int) -> bool:
        with self._mutex:
            return oid in self._index

    def memory_bytes(self) -> int:
        """C-equivalent bytes of the wrapped index."""
        with self._mutex:
            return self._index.memory_bytes()

    def check_invariants(self) -> None:
        """Audit the wrapped index under the global lock."""
        with self._mutex:
            self._index.check_invariants()

    def query(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
    ) -> QueryResult:
        """Range-filtered top-``k`` query under the global lock."""
        return self.query_versioned(
            query_vector, lo, hi, k, l_budget=l_budget
        )[0]

    def query_versioned(
        self,
        query_vector: np.ndarray,
        lo: float,
        hi: float,
        k: int,
        *,
        l_budget: int | None = None,
    ) -> tuple[QueryResult, int]:
        """Like :meth:`query`, also returning the version read."""
        with self._admit("read"), self._mutex:
            result = self._index.query(
                query_vector, lo, hi, k, l_budget=l_budget
            )
            version = self._version
        self.stats.bump(reads=1, read_batches=1)
        return result, version

    def query_batch(
        self,
        queries: np.ndarray,
        ranges: Sequence[tuple[float, float]],
        k: int,
        *,
        l_budget: int | None = None,
    ) -> BatchResult:
        """Answer a caller-assembled batch under the global lock."""
        with self._admit("read"), self._mutex:
            result = execute_batch(
                self._index, queries, ranges, k, l_budget=l_budget
            )
        self.stats.bump(reads=len(result), read_batches=1)
        return result

    def insert(self, oid: int, vector: np.ndarray, attr: float) -> None:
        """Insert one object under the global lock."""
        with self._admit("write"), self._mutex:
            self._index.insert(oid, vector, attr)
            self._version += 1
        self.stats.bump(writes=1)

    def delete(self, oid: int) -> None:
        """Delete one object under the global lock (maintenance inline)."""
        with self._admit("write"), self._mutex:
            self._index.delete(oid)
            self._version += 1
        self.stats.bump(writes=1)

    def _admit(self, kind: str):
        if self._admission is None:
            return nullcontext()
        return self._admission.admit(kind)
