"""Write-ahead log + snapshot durability for the serving layer.

A service directory holds:

* ``snapshot-<seq>.npz`` — full index archives written atomically by
  :func:`repro.io.save_index` (temp file + ``os.replace``), named by the
  WAL sequence number they are consistent with;
* ``wal.log`` — an append-only text log, one record per committed write.

Each record line is ``<json-payload>\\t<crc32-hex>``: the payload carries a
monotonically increasing ``seq``, the op (``insert`` / ``delete``), and the
operands (vectors as float64 lists — JSON round-trips Python floats
exactly).  The CRC detects torn or corrupted lines; a torn *final* line
(crash mid-append) is silently dropped on recovery, while corruption in the
middle of the log raises, because records after it cannot be trusted.

Recovery = load the newest snapshot, then replay every record with a
sequence number beyond it, in order.  Snapshots never block recovery
correctness: records at or below the snapshot's seq are skipped, so a
crash between "snapshot written" and "log truncated" is harmless.

Continuous readers (the replication shipper in :mod:`repro.cluster`)
tail the log through a :class:`WalCursor`: it remembers the byte offset
after the last complete record it consumed, so polling for new records
reads O(new bytes) instead of re-parsing the whole log, and it survives
the snapshot-time truncation rewrite by detecting the file swap and
re-scanning (skipping records it already delivered by sequence number).
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import threading
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..obs import counter, histogram, phase

__all__ = [
    "WALError",
    "WalRecord",
    "WalCursor",
    "WriteAheadLog",
    "latest_snapshot",
    "record_from_payload",
    "recover_index",
]

_WAL_APPEND_MS = histogram("wal.append_ms")
_WAL_FSYNC_MS = histogram("wal.fsync_ms")
_WAL_SNAPSHOT_MS = histogram("wal.snapshot_ms")
_WAL_APPENDS = counter("wal.appends")
_WAL_TAIL_REPAIRS = counter("wal.tail_repairs")

WAL_NAME = "wal.log"
# ``_snapshot_path`` zero-pads to 12 digits but seq keeps growing past
# that, so the pattern must accept 12-or-more digits; sorting is numeric
# (int seq), never lexical, so the padding is cosmetic only.
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{12,})\.npz$")


class WALError(RuntimeError):
    """Raised on unusable WAL directories or mid-log corruption."""


class WalRecord:
    """One decoded WAL record."""

    __slots__ = ("seq", "op", "oid", "attr", "vector")

    def __init__(self, seq, op, oid, attr=None, vector=None) -> None:
        self.seq = seq
        self.op = op
        self.oid = oid
        self.attr = attr
        self.vector = vector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(seq={self.seq}, op={self.op!r}, oid={self.oid})"

    def payload(self) -> dict:
        """The JSON-serializable form of this record (log and wire).

        Round-trips exactly through :func:`record_from_payload`; the
        replication stream ships records in this shape.
        """
        payload: dict = {"seq": self.seq, "op": self.op, "oid": self.oid}
        if self.op == "insert":
            payload["attr"] = self.attr
            payload["vec"] = self.vector
        return payload


def _encode(payload: dict) -> str:
    body = json.dumps(payload, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}\t{crc:08x}\n"


def _decode_bytes(line: bytes) -> dict | None:
    """Parse one raw log line; None on undecodable bytes or a bad CRC."""
    try:
        return _decode(line.decode("utf-8"))
    except UnicodeDecodeError:
        return None


def _decode(line: str) -> dict | None:
    """Parse one log line; returns None when the line fails its CRC."""
    line = line.rstrip("\n")
    body, sep, crc_text = line.rpartition("\t")
    if not sep:
        return None
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return None


def _snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"snapshot-{seq:012d}.npz"


def _list_snapshots(directory: Path) -> list[tuple[int, Path]]:
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _SNAPSHOT_PATTERN.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort()
    return found


def latest_snapshot(directory: str | Path) -> tuple[int, Path] | None:
    """The newest ``(seq, path)`` snapshot in a durability directory.

    Replicas use this to pick their catch-up base without owning a
    :class:`WriteAheadLog`.  Returns ``None`` when the directory holds no
    snapshot.  Ordering is numeric on the sequence number, so snapshots
    whose seq outgrew the 12-digit zero padding sort correctly.
    """
    snapshots = _list_snapshots(Path(directory))
    return snapshots[-1] if snapshots else None


def record_from_payload(payload: dict, path: str | Path = "<payload>") -> WalRecord:
    """Build one :class:`WalRecord` from a decoded payload, validating it.

    Inverse of :meth:`WalRecord.payload`; ``path`` names the source (a
    log file or a replication peer) in error messages.

    Raises:
        WALError: On a malformed payload or an unknown op.
    """
    try:
        record = WalRecord(
            seq=int(payload["seq"]),
            op=str(payload["op"]),
            oid=int(payload["oid"]),
            attr=payload.get("attr"),
            vector=payload.get("vec"),
        )
    except (KeyError, TypeError, ValueError) as error:
        raise WALError(f"{path}: malformed record: {error}") from error
    if record.op not in ("insert", "delete"):
        raise WALError(f"{path}: unknown op {record.op!r}")
    return record


class WalCursor:
    """Incremental, truncation-aware reader over one WAL file.

    The cursor remembers the byte offset just past the last complete
    record it consumed, so each :meth:`poll` reads only the bytes
    appended since the previous one — O(new bytes), not O(whole log).
    That is the property that makes continuous tailing (the replication
    shipper polling every few milliseconds) affordable; the naive
    re-parse makes total shipping work quadratic in the log length.

    Truncation safety: the snapshot path atomically rewrites ``wal.log``
    keeping only records beyond the snapshot (a new inode, usually
    shorter).  The cursor detects the swap (inode change or a file
    shorter than its offset) and resets to offset 0, re-scanning the
    now-small log and skipping records at or below the last sequence
    number it already delivered — records are never duplicated and never
    skipped.

    Tail tolerance matches :func:`recover_index`: an incomplete final
    line (no newline yet — an append in flight or a torn crash tail) is
    left unconsumed for the next poll; a complete line that fails its
    CRC is tolerated only while nothing valid follows it, and raises
    :class:`WALError` as soon as later records prove the log corrupt in
    the middle.

    Attributes:
        path: The log file being tailed.
        bytes_read: Total bytes read off disk so far (tests pin the
            incrementality contract on this).
        records_read: Total records delivered so far.
    """

    def __init__(self, path: str | Path, *, after_seq: int = 0) -> None:
        self.path = Path(path)
        self.bytes_read = 0
        self.records_read = 0
        self._offset = 0
        self._inode: int | None = None
        self._last_seq = int(after_seq)

    @property
    def last_seq(self) -> int:
        """Sequence number of the last record delivered (or the floor)."""
        return self._last_seq

    def poll(self) -> Iterator[WalRecord]:
        """Yield records appended (or still undelivered) since last poll.

        Raises:
            WALError: On mid-log corruption, a malformed record, or a
                non-monotonic sequence number.
        """
        try:
            with open(self.path, "rb") as handle:
                stat = os.fstat(handle.fileno())
                if self._inode is not None and (
                    stat.st_ino != self._inode or stat.st_size < self._offset
                ):
                    # Truncation rewrite: new file, re-scan from the top.
                    self._offset = 0
                self._inode = stat.st_ino
                handle.seek(self._offset)
                data = handle.read()
        except FileNotFoundError:
            return
        self.bytes_read += len(data)
        end = data.rfind(b"\n")
        if end < 0:
            return  # no complete record yet; keep the offset where it is
        lines = data[: end + 1].split(b"\n")[:-1]
        payloads = [_decode_bytes(line) for line in lines]
        # A decode failure is a tolerated torn tail only while nothing
        # valid follows it; otherwise the log is corrupt in the middle.
        valid_until = len(payloads)
        while valid_until > 0 and payloads[valid_until - 1] is None:
            valid_until -= 1
        if any(payload is None for payload in payloads[:valid_until]):
            bad = payloads.index(None)
            raise WALError(
                f"{self.path}: corrupt record at byte offset "
                f"{self._offset + sum(len(l) + 1 for l in lines[:bad])} is "
                "followed by valid records; refusing an untrusted tail"
            )
        previous_seq: int | None = None
        for line, payload in zip(lines[:valid_until], payloads[:valid_until]):
            record = record_from_payload(payload, self.path)
            if previous_seq is not None and record.seq <= previous_seq:
                raise WALError(
                    f"{self.path}: non-monotonic sequence {record.seq} "
                    f"after {previous_seq}"
                )
            previous_seq = record.seq
            self._offset += len(line) + 1
            if record.seq <= self._last_seq:
                continue  # already delivered before a truncation re-scan
            self._last_seq = record.seq
            self.records_read += 1
            yield record


class WriteAheadLog:
    """Append-only durable log of index mutations, plus snapshot management.

    Args:
        directory: The service's durability directory (created if absent).
        fsync: Fsync after every append.  Off by default: a flushed-but-not
            -fsynced log survives process crashes (the benchmark and test
            mode), fsync additionally survives power loss.
        keep_snapshots: How many most-recent snapshots to retain when a new
            one is written.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = False,
        keep_snapshots: int = 2,
    ) -> None:
        if keep_snapshots < 1:
            raise ValueError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        # Guards the append plane against the snapshot plane: appends,
        # the truncation rewrite (which swaps self._file), and close all
        # serialize here, so a maintenance-thread snapshot can never
        # close the file out from under a concurrent writer.
        self._mutex = threading.Lock()
        self._repair_tail()
        self._last_seq = self._scan_last_seq()
        self._file = open(  # noqa: SIM115 - lifetime == WAL lifetime
            self.directory / WAL_NAME, "a", encoding="utf-8"
        )

    def _repair_tail(self) -> None:
        """Trim (or complete) a torn final line before appending resumes.

        A crash mid-append leaves the log ending in a partial line with no
        newline.  Recovery tolerates that — but *appending* to such a file
        would concatenate the next record onto the torn fragment, turning
        a harmless torn tail into mid-log corruption that poisons every
        record written afterwards.  So on open: a partial tail that still
        decodes (the write was cut exactly before its newline) gets its
        newline back; trailing lines that fail their CRC are truncated
        away.  Only the torn tail is touched — corruption *followed by*
        valid records is left in place for recovery to reject.
        """
        path = self.directory / WAL_NAME
        if not path.exists():
            return
        with open(path, "rb") as handle:
            data = handle.read()
        if not data:
            return
        complete = data.endswith(b"\n")
        lines = data.split(b"\n")
        if complete:
            lines.pop()  # split artifact after the final newline
        if not complete and lines and _decode_bytes(lines[-1]) is not None:
            # The record survived whole; only its newline was lost.
            with open(path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            _WAL_TAIL_REPAIRS.inc()
            return
        kept = len(lines)
        if not complete:
            kept -= 1  # a non-decoding partial tail never survives
        while kept > 0 and _decode_bytes(lines[kept - 1]) is None:
            kept -= 1
        if complete and kept == len(lines):
            return  # nothing torn
        size = sum(len(line) + 1 for line in lines[:kept])
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        _WAL_TAIL_REPAIRS.inc()

    # ------------------------------------------------------------------
    # Sequence / discovery
    # ------------------------------------------------------------------
    def _scan_last_seq(self) -> int:
        last = 0
        snapshots = _list_snapshots(self.directory)
        if snapshots:
            last = snapshots[-1][0]
        for record in _read_records(self.directory / WAL_NAME):
            last = max(last, record.seq)
        return last

    @property
    def last_seq(self) -> int:
        """Highest sequence number made durable so far (0 if none).

        Lock-free monitoring read: int loads are atomic under the GIL
        and a slightly stale value is fine for observers.
        """
        return self._last_seq  # repro: noqa-C002

    def latest_snapshot_seq(self) -> int | None:
        """Sequence number of the newest snapshot, or None."""
        snapshots = _list_snapshots(self.directory)
        return snapshots[-1][0] if snapshots else None

    def cursor(self, *, after_seq: int = 0) -> WalCursor:
        """A fresh :class:`WalCursor` over this log.

        The cursor delivers every durable record with sequence number
        beyond ``after_seq``; keep it and re-poll to tail new appends
        incrementally (O(new bytes) per poll).
        """
        return WalCursor(self.directory / WAL_NAME, after_seq=after_seq)

    def records_since(self, seq: int) -> list[WalRecord]:
        """All durable records with sequence number > ``seq``, in order.

        One-shot convenience over :meth:`cursor`; a caller polling
        repeatedly should hold its own cursor instead, which reads only
        the appended bytes on each poll.
        """
        return list(self.cursor(after_seq=seq).poll())

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_insert(
        self, oid: int, attr: float, vector: np.ndarray
    ) -> int:
        """Append one insert record; returns its sequence number."""
        return self._append(
            "insert",
            oid=int(oid),
            attr=float(attr),
            vec=np.asarray(vector, dtype=np.float64).tolist(),
        )

    def append_delete(self, oid: int) -> int:
        """Append one delete record; returns its sequence number."""
        return self._append("delete", oid=int(oid))

    def _append(self, op: str, **fields) -> int:
        with phase("wal_append", metric=_WAL_APPEND_MS):
            with self._mutex:
                # Sequence assignment happens under the mutex so appends
                # racing a truncation (or each other) stay gapless.
                payload = {"seq": self._last_seq + 1, "op": op, **fields}
                self._file.write(_encode(payload))
                self._file.flush()
                if self.fsync:
                    with phase("wal_fsync", metric=_WAL_FSYNC_MS):
                        os.fsync(self._file.fileno())
                self._last_seq = payload["seq"]
        _WAL_APPENDS.inc()
        return payload["seq"]

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self, index) -> Path:
        """Persist ``index`` as the snapshot consistent with ``last_seq``.

        The caller must guarantee the index state actually reflects every
        appended record (the service does so by pausing writers).  After
        the snapshot lands, the log is truncated to the records beyond it
        and snapshots older than ``keep_snapshots`` are pruned.
        """
        from ..io.serialization import save_index

        with phase("wal_snapshot", metric=_WAL_SNAPSHOT_MS):
            with self._mutex:
                snapshot_seq = self._last_seq
            path = _snapshot_path(self.directory, snapshot_seq)
            save_index(index, path)
            self._truncate_log(snapshot_seq)
            self._prune_snapshots()
        return path

    def _truncate_log(self, seq: int) -> None:
        """Atomically rewrite the log keeping only records beyond ``seq``.

        Holds the WAL mutex for the whole read-rewrite-swap: a record
        appended mid-rewrite would land in the *old* file and be lost by
        the ``os.replace`` otherwise.
        """
        with self._mutex:
            keep = list(self.cursor(after_seq=seq).poll())
            descriptor, temp_name = tempfile.mkstemp(
                dir=self.directory, prefix=".wal.", suffix=".tmp"
            )
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                for record in keep:
                    handle.write(_encode(record.payload()))
                handle.flush()
                os.fsync(handle.fileno())
            self._file.close()
            os.replace(temp_name, self.directory / WAL_NAME)
            self._file = open(  # noqa: SIM115 - lifetime == WAL lifetime
                self.directory / WAL_NAME, "a", encoding="utf-8"
            )

    def _prune_snapshots(self) -> None:
        snapshots = _list_snapshots(self.directory)
        for _, path in snapshots[: -self.keep_snapshots]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Flush (and, in fsync mode, fsync) then close the log file.

        An fsync-mode log must fsync on clean shutdown too: the final
        appends would otherwise sit in the page cache only, so a power
        loss after a *clean* close could still lose the tail — exactly
        the failure mode ``fsync=True`` promises to exclude.
        """
        with self._mutex:
            if not self._file.closed:
                self._file.flush()
                if self.fsync:
                    os.fsync(self._file.fileno())
                self._file.close()


def _read_records(path: Path) -> Iterator[WalRecord]:
    """Decode a whole log file, tolerating only a torn final line.

    One-shot wrapper over :class:`WalCursor` (which carries the
    validation rules: CRC, op, monotonic sequence, untrusted-tail
    rejection).
    """
    yield from WalCursor(path).poll()


def recover_index(directory: str | Path):
    """Rebuild an index from its durability directory.

    Loads the newest snapshot and replays every WAL record beyond its
    sequence number, reproducing the exact pre-crash live state (same
    objects, attributes, and coarse-cluster assignments — cluster
    assignment is deterministic given the trained quantizers in the
    snapshot).

    Returns:
        ``(index, last_seq)`` — the recovered index and the sequence
        number of the last applied record.

    Raises:
        WALError: If the directory holds no snapshot or the log is
            corrupt beyond its final line.
    """
    from ..io.serialization import load_index

    directory = Path(directory)
    newest = latest_snapshot(directory)
    if newest is None:
        raise WALError(f"{directory}: no snapshot to recover from")
    snapshot_seq, snapshot_file = newest
    index = load_index(snapshot_file)
    last_seq = snapshot_seq
    for record in WalCursor(directory / WAL_NAME, after_seq=snapshot_seq).poll():
        if record.op == "insert":
            index.insert(
                record.oid,
                np.asarray(record.vector, dtype=np.float64),
                record.attr,
            )
        else:
            index.delete(record.oid)
        last_seq = record.seq
    return index, last_seq
