"""Write-ahead log + snapshot durability for the serving layer.

A service directory holds:

* ``snapshot-<seq>.npz`` — full index archives written atomically by
  :func:`repro.io.save_index` (temp file + ``os.replace``), named by the
  WAL sequence number they are consistent with;
* ``wal.log`` — an append-only text log, one record per committed write.

Each record line is ``<json-payload>\\t<crc32-hex>``: the payload carries a
monotonically increasing ``seq``, the op (``insert`` / ``delete``), and the
operands (vectors as float64 lists — JSON round-trips Python floats
exactly).  The CRC detects torn or corrupted lines; a torn *final* line
(crash mid-append) is silently dropped on recovery, while corruption in the
middle of the log raises, because records after it cannot be trusted.

Recovery = load the newest snapshot, then replay every record with a
sequence number beyond it, in order.  Snapshots never block recovery
correctness: records at or below the snapshot's seq are skipped, so a
crash between "snapshot written" and "log truncated" is harmless.
"""

from __future__ import annotations

import json
import os
import re
import tempfile
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from ..obs import counter, histogram, phase

__all__ = ["WALError", "WalRecord", "WriteAheadLog", "recover_index"]

_WAL_APPEND_MS = histogram("wal.append_ms")
_WAL_FSYNC_MS = histogram("wal.fsync_ms")
_WAL_SNAPSHOT_MS = histogram("wal.snapshot_ms")
_WAL_APPENDS = counter("wal.appends")
_WAL_TAIL_REPAIRS = counter("wal.tail_repairs")

WAL_NAME = "wal.log"
_SNAPSHOT_PATTERN = re.compile(r"^snapshot-(\d{12})\.npz$")


class WALError(RuntimeError):
    """Raised on unusable WAL directories or mid-log corruption."""


class WalRecord:
    """One decoded WAL record."""

    __slots__ = ("seq", "op", "oid", "attr", "vector")

    def __init__(self, seq, op, oid, attr=None, vector=None) -> None:
        self.seq = seq
        self.op = op
        self.oid = oid
        self.attr = attr
        self.vector = vector

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WalRecord(seq={self.seq}, op={self.op!r}, oid={self.oid})"


def _encode(payload: dict) -> str:
    body = json.dumps(payload, separators=(",", ":"))
    crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
    return f"{body}\t{crc:08x}\n"


def _decode_bytes(line: bytes) -> dict | None:
    """Parse one raw log line; None on undecodable bytes or a bad CRC."""
    try:
        return _decode(line.decode("utf-8"))
    except UnicodeDecodeError:
        return None


def _decode(line: str) -> dict | None:
    """Parse one log line; returns None when the line fails its CRC."""
    line = line.rstrip("\n")
    body, sep, crc_text = line.rpartition("\t")
    if not sep:
        return None
    try:
        expected = int(crc_text, 16)
    except ValueError:
        return None
    if zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF != expected:
        return None
    try:
        return json.loads(body)
    except json.JSONDecodeError:
        return None


def _snapshot_path(directory: Path, seq: int) -> Path:
    return directory / f"snapshot-{seq:012d}.npz"


def _list_snapshots(directory: Path) -> list[tuple[int, Path]]:
    if not directory.is_dir():
        return []
    found = []
    for entry in directory.iterdir():
        match = _SNAPSHOT_PATTERN.match(entry.name)
        if match:
            found.append((int(match.group(1)), entry))
    found.sort()
    return found


class WriteAheadLog:
    """Append-only durable log of index mutations, plus snapshot management.

    Args:
        directory: The service's durability directory (created if absent).
        fsync: Fsync after every append.  Off by default: a flushed-but-not
            -fsynced log survives process crashes (the benchmark and test
            mode), fsync additionally survives power loss.
        keep_snapshots: How many most-recent snapshots to retain when a new
            one is written.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = False,
        keep_snapshots: int = 2,
    ) -> None:
        if keep_snapshots < 1:
            raise ValueError(
                f"keep_snapshots must be >= 1, got {keep_snapshots}"
            )
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.keep_snapshots = keep_snapshots
        self._repair_tail()
        self._last_seq = self._scan_last_seq()
        self._file = open(  # noqa: SIM115 - lifetime == WAL lifetime
            self.directory / WAL_NAME, "a", encoding="utf-8"
        )

    def _repair_tail(self) -> None:
        """Trim (or complete) a torn final line before appending resumes.

        A crash mid-append leaves the log ending in a partial line with no
        newline.  Recovery tolerates that — but *appending* to such a file
        would concatenate the next record onto the torn fragment, turning
        a harmless torn tail into mid-log corruption that poisons every
        record written afterwards.  So on open: a partial tail that still
        decodes (the write was cut exactly before its newline) gets its
        newline back; trailing lines that fail their CRC are truncated
        away.  Only the torn tail is touched — corruption *followed by*
        valid records is left in place for recovery to reject.
        """
        path = self.directory / WAL_NAME
        if not path.exists():
            return
        with open(path, "rb") as handle:
            data = handle.read()
        if not data:
            return
        complete = data.endswith(b"\n")
        lines = data.split(b"\n")
        if complete:
            lines.pop()  # split artifact after the final newline
        if not complete and lines and _decode_bytes(lines[-1]) is not None:
            # The record survived whole; only its newline was lost.
            with open(path, "ab") as handle:
                handle.write(b"\n")
                handle.flush()
                os.fsync(handle.fileno())
            _WAL_TAIL_REPAIRS.inc()
            return
        kept = len(lines)
        if not complete:
            kept -= 1  # a non-decoding partial tail never survives
        while kept > 0 and _decode_bytes(lines[kept - 1]) is None:
            kept -= 1
        if complete and kept == len(lines):
            return  # nothing torn
        size = sum(len(line) + 1 for line in lines[:kept])
        with open(path, "rb+") as handle:
            handle.truncate(size)
            handle.flush()
            os.fsync(handle.fileno())
        _WAL_TAIL_REPAIRS.inc()

    # ------------------------------------------------------------------
    # Sequence / discovery
    # ------------------------------------------------------------------
    def _scan_last_seq(self) -> int:
        last = 0
        snapshots = _list_snapshots(self.directory)
        if snapshots:
            last = snapshots[-1][0]
        for record in _read_records(self.directory / WAL_NAME):
            last = max(last, record.seq)
        return last

    @property
    def last_seq(self) -> int:
        """Highest sequence number made durable so far (0 if none)."""
        return self._last_seq

    def latest_snapshot_seq(self) -> int | None:
        """Sequence number of the newest snapshot, or None."""
        snapshots = _list_snapshots(self.directory)
        return snapshots[-1][0] if snapshots else None

    def records_since(self, seq: int) -> list[WalRecord]:
        """All durable records with sequence number > ``seq``, in order."""
        return [
            record
            for record in _read_records(self.directory / WAL_NAME)
            if record.seq > seq
        ]

    # ------------------------------------------------------------------
    # Appends
    # ------------------------------------------------------------------
    def append_insert(
        self, oid: int, attr: float, vector: np.ndarray
    ) -> int:
        """Append one insert record; returns its sequence number."""
        payload = {
            "seq": self._last_seq + 1,
            "op": "insert",
            "oid": int(oid),
            "attr": float(attr),
            "vec": np.asarray(vector, dtype=np.float64).tolist(),
        }
        return self._append(payload)

    def append_delete(self, oid: int) -> int:
        """Append one delete record; returns its sequence number."""
        payload = {"seq": self._last_seq + 1, "op": "delete", "oid": int(oid)}
        return self._append(payload)

    def _append(self, payload: dict) -> int:
        with phase("wal_append", metric=_WAL_APPEND_MS):
            self._file.write(_encode(payload))
            self._file.flush()
            if self.fsync:
                with phase("wal_fsync", metric=_WAL_FSYNC_MS):
                    os.fsync(self._file.fileno())
        _WAL_APPENDS.inc()
        self._last_seq = payload["seq"]
        return self._last_seq

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def write_snapshot(self, index) -> Path:
        """Persist ``index`` as the snapshot consistent with ``last_seq``.

        The caller must guarantee the index state actually reflects every
        appended record (the service does so by pausing writers).  After
        the snapshot lands, the log is truncated to the records beyond it
        and snapshots older than ``keep_snapshots`` are pruned.
        """
        from ..io.serialization import save_index

        with phase("wal_snapshot", metric=_WAL_SNAPSHOT_MS):
            path = _snapshot_path(self.directory, self._last_seq)
            save_index(index, path)
            self._truncate_log(self._last_seq)
            self._prune_snapshots()
        return path

    def _truncate_log(self, seq: int) -> None:
        """Atomically rewrite the log keeping only records beyond ``seq``."""
        keep = [
            record
            for record in _read_records(self.directory / WAL_NAME)
            if record.seq > seq
        ]
        descriptor, temp_name = tempfile.mkstemp(
            dir=self.directory, prefix=".wal.", suffix=".tmp"
        )
        with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
            for record in keep:
                handle.write(_encode(_record_payload(record)))
            handle.flush()
            os.fsync(handle.fileno())
        self._file.close()
        os.replace(temp_name, self.directory / WAL_NAME)
        self._file = open(  # noqa: SIM115 - lifetime == WAL lifetime
            self.directory / WAL_NAME, "a", encoding="utf-8"
        )

    def _prune_snapshots(self) -> None:
        snapshots = _list_snapshots(self.directory)
        for _, path in snapshots[: -self.keep_snapshots]:
            try:
                path.unlink()
            except OSError:  # pragma: no cover - best-effort cleanup
                pass

    def close(self) -> None:
        """Flush and close the log file."""
        if not self._file.closed:
            self._file.flush()
            self._file.close()


def _record_payload(record: WalRecord) -> dict:
    payload: dict = {"seq": record.seq, "op": record.op, "oid": record.oid}
    if record.op == "insert":
        payload["attr"] = record.attr
        payload["vec"] = record.vector
    return payload


def _read_records(path: Path) -> Iterator[WalRecord]:
    """Decode a log file, tolerating only a torn final line.

    Raises:
        WALError: When a corrupt line is followed by valid records, or a
            record is malformed / out of order — the tail cannot be
            trusted in either case.
    """
    if not path.exists():
        return
    with open(path, "r", encoding="utf-8") as handle:
        lines = handle.readlines()
    torn_at: int | None = None
    previous_seq = None
    for number, line in enumerate(lines):
        payload = _decode(line)
        if payload is None:
            torn_at = number
            continue
        if torn_at is not None:
            raise WALError(
                f"{path}: corrupt record at line {torn_at + 1} is followed "
                "by valid records; refusing to replay an untrusted tail"
            )
        try:
            record = WalRecord(
                seq=int(payload["seq"]),
                op=str(payload["op"]),
                oid=int(payload["oid"]),
                attr=payload.get("attr"),
                vector=payload.get("vec"),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise WALError(f"{path}: malformed record: {error}") from error
        if record.op not in ("insert", "delete"):
            raise WALError(f"{path}: unknown op {record.op!r}")
        if previous_seq is not None and record.seq <= previous_seq:
            raise WALError(
                f"{path}: non-monotonic sequence {record.seq} after "
                f"{previous_seq}"
            )
        previous_seq = record.seq
        yield record


def recover_index(directory: str | Path):
    """Rebuild an index from its durability directory.

    Loads the newest snapshot and replays every WAL record beyond its
    sequence number, reproducing the exact pre-crash live state (same
    objects, attributes, and coarse-cluster assignments — cluster
    assignment is deterministic given the trained quantizers in the
    snapshot).

    Returns:
        ``(index, last_seq)`` — the recovered index and the sequence
        number of the last applied record.

    Raises:
        WALError: If the directory holds no snapshot or the log is
            corrupt beyond its final line.
    """
    from ..io.serialization import load_index

    directory = Path(directory)
    snapshots = _list_snapshots(directory)
    if not snapshots:
        raise WALError(f"{directory}: no snapshot to recover from")
    snapshot_seq, snapshot_file = snapshots[-1]
    index = load_index(snapshot_file)
    last_seq = snapshot_seq
    for record in _read_records(directory / WAL_NAME):
        if record.seq <= snapshot_seq:
            continue
        if record.op == "insert":
            index.insert(
                record.oid,
                np.asarray(record.vector, dtype=np.float64),
                record.attr,
            )
        else:
            index.delete(record.oid)
        last_seq = record.seq
    return index, last_seq
