"""Closed-loop workload driver for the serving layer.

``num_readers`` reader threads and ``num_writers`` writer threads issue
requests back-to-back (closed loop: each thread's next request starts when
its previous one returns) against anything exposing the service surface
(``query`` / ``insert`` / ``delete``).  The driver reports aggregate and
per-plane QPS plus p50/p95/p99 latencies, counts shed requests
(:class:`~repro.service.admission.AdmissionError`) separately from
failures, and runs a cheap well-formedness probe on every read result —
ids unique, at most ``k`` of them, distances finite and non-decreasing —
so gross consistency breakage (a read observing a half-applied write)
surfaces as a nonzero ``violations`` count rather than silence.

Attribute centers are drawn uniformly or Zipf-skewed (``zipf_s > 0``):
skew concentrates both query ranges and writes on a hot region of the
attribute domain, the adversarial case for shard routing and rebuild
triggers alike.

Besides the closed loop, reads support an **open-loop** mode
(``open_loop_qps``): arrivals follow a precomputed Poisson schedule at a
fixed offered rate, reader threads claim arrivals in order, and latency
is measured from the *scheduled arrival time* — so queueing delay shows
up in the percentiles instead of silently throttling the offered load.
That is the mode that lets a parallel backend and a thread baseline be
compared at matched offered QPS.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..obs import histogram, phase
from .admission import AdmissionError

__all__ = ["WorkloadSpec", "OpStats", "LoadReport", "run_load"]

_ZIPF_BINS = 256
_CLIENT_READ_MS = histogram("loadgen.read_latency_ms")
_CLIENT_WRITE_MS = histogram("loadgen.write_latency_ms")


@dataclass
class WorkloadSpec:
    """Shape of the synthetic request stream.

    Attributes:
        dim: Query/insert vector dimensionality.
        attr_low, attr_high: The attribute domain.
        range_fraction: Query range width as a fraction of the domain.
        k: Top-k per query.
        l_budget: Retrieval budget forwarded to ``query`` (None = policy).
        zipf_s: Zipf exponent for attribute centers (and for query-pool
            ranks when a pool is set); 0 or less = uniform.
        delete_fraction: Probability a writer op is a delete of one of its
            own earlier inserts (when it has any) instead of an insert.
        seed: Base seed; thread ``t`` derives ``seed + t``.
        query_pool: Optional ``(m, dim)`` array of reusable query vectors;
            readers draw from it (Zipf-ranked when ``zipf_s > 0``) instead
            of sampling fresh Gaussians — the serving-shaped stream where
            request coalescing and the ADC-table cache pay off.
        range_templates: Optional fixed ``(lo, hi)`` pool; readers draw
            ranges from it instead of deriving them from a sampled center,
            so concurrent requests can share one range decomposition.
    """

    dim: int = 32
    attr_low: float = 0.0
    attr_high: float = 1.0
    range_fraction: float = 0.2
    k: int = 10
    l_budget: int | None = None
    zipf_s: float = 0.0
    delete_fraction: float = 0.5
    seed: int = 0
    query_pool: np.ndarray | None = None
    range_templates: list | None = None


@dataclass
class OpStats:
    """Latency/outcome aggregate for one op kind.

    Attributes:
        completed: Requests that returned a result.
        rejected: Requests shed by admission control.
        deadline_exceeded: Requests that timed out (any
            :class:`TimeoutError`, including the front door's
            ``DEADLINE_EXCEEDED`` responses).
        connection_errors: Requests lost to a broken transport
            (:class:`ConnectionError` / :class:`OSError`).
        failed: Requests that raised anything else.
        latencies_ms: Service latency of each completed request
            (request issued → response).
        sched_latencies_ms: Open-loop only — latency of each completed
            request measured from its *scheduled arrival*, so queueing
            delay behind a saturated service is visible.
    """

    completed: int = 0
    rejected: int = 0
    deadline_exceeded: int = 0
    connection_errors: int = 0
    failed: int = 0
    latencies_ms: list = field(default_factory=list)
    sched_latencies_ms: list = field(default_factory=list)

    def percentile(self, q: float) -> float:
        """Service-latency percentile in ms (0.0 when nothing completed)."""
        if not self.latencies_ms:
            return 0.0
        return float(np.percentile(self.latencies_ms, q))

    def sched_percentile(self, q: float) -> float:
        """Scheduled-arrival latency percentile in ms (open loop only;
        0.0 when the run was closed-loop)."""
        if not self.sched_latencies_ms:
            return 0.0
        return float(np.percentile(self.sched_latencies_ms, q))


def _classify_failure(error: BaseException) -> str:
    """The :class:`OpStats` counter an exception belongs to.

    Order matters: :class:`TimeoutError` and :class:`ConnectionError`
    both subclass :class:`OSError`, so the deadline check runs first.
    """
    if isinstance(error, TimeoutError):
        return "deadline_exceeded"
    if getattr(error, "code", None) == "DEADLINE_EXCEEDED":
        return "deadline_exceeded"
    if isinstance(error, (ConnectionError, OSError)):
        return "connection_errors"
    return "failed"


@dataclass
class LoadReport:
    """Outcome of one closed-loop run.

    Attributes:
        duration_s: Measured wall-clock run time.
        reads, writes: Per-plane :class:`OpStats`.
        violations: Read results failing the well-formedness probe.
        errors: First few exception strings from failed ops (diagnostic).
    """

    duration_s: float
    reads: OpStats
    writes: OpStats
    violations: int
    errors: list

    @property
    def read_qps(self) -> float:
        return self.reads.completed / self.duration_s

    @property
    def write_qps(self) -> float:
        return self.writes.completed / self.duration_s

    @property
    def total_qps(self) -> float:
        return (
            self.reads.completed + self.writes.completed
        ) / self.duration_s

    def format(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"duration        {self.duration_s:8.2f} s",
            f"total QPS       {self.total_qps:8.1f}",
            (
                f"reads           {self.reads.completed:8d}"
                f"  ({self.read_qps:.1f}/s,"
                f" p50 {self.reads.percentile(50):.2f} ms,"
                f" p95 {self.reads.percentile(95):.2f} ms,"
                f" p99 {self.reads.percentile(99):.2f} ms)"
            ),
            (
                f"writes          {self.writes.completed:8d}"
                f"  ({self.write_qps:.1f}/s,"
                f" p50 {self.writes.percentile(50):.2f} ms,"
                f" p95 {self.writes.percentile(95):.2f} ms,"
                f" p99 {self.writes.percentile(99):.2f} ms)"
            ),
            (
                f"shed            {self.reads.rejected:8d} reads,"
                f" {self.writes.rejected} writes"
            ),
            (
                f"deadline        {self.reads.deadline_exceeded:8d} reads,"
                f" {self.writes.deadline_exceeded} writes"
            ),
            (
                f"conn errors     {self.reads.connection_errors:8d} reads,"
                f" {self.writes.connection_errors} writes"
            ),
            (
                f"failed          {self.reads.failed:8d} reads,"
                f" {self.writes.failed} writes"
            ),
            f"violations      {self.violations:8d}",
        ]
        if self.reads.sched_latencies_ms:
            lines.insert(
                3,
                (
                    f"reads (sched)   {'':8s}"
                    f"  (open loop,"
                    f" p50 {self.reads.sched_percentile(50):.2f} ms,"
                    f" p95 {self.reads.sched_percentile(95):.2f} ms,"
                    f" p99 {self.reads.sched_percentile(99):.2f} ms)"
                ),
            )
        if self.errors:
            lines.append(f"first errors    {self.errors}")
        return "\n".join(lines)


def _sample_center(rng: np.random.Generator, spec: WorkloadSpec) -> float:
    """One attribute center, uniform or Zipf-skewed over binned positions."""
    span = spec.attr_high - spec.attr_low
    if spec.zipf_s <= 0:
        return spec.attr_low + span * float(rng.random())
    rank = int(rng.zipf(spec.zipf_s))
    position = ((rank - 1) % _ZIPF_BINS + float(rng.random())) / _ZIPF_BINS
    return spec.attr_low + span * position


def _probe_result(result, k: int) -> bool:
    """True when a read result is well-formed (see module docstring)."""
    ids = np.asarray(result.ids)
    distances = np.asarray(result.distances, dtype=np.float64)
    if len(ids) != len(distances) or len(ids) > k:
        return False
    if len(ids) != len(set(ids.tolist())):
        return False
    if not np.all(np.isfinite(distances)):
        return False
    return bool(np.all(np.diff(distances) >= 0))


def run_load(
    service,
    spec: WorkloadSpec,
    *,
    duration_s: float,
    num_readers: int,
    num_writers: int,
    writer_oid_base: int = 1_000_000_000,
    on_read=None,
    open_loop_qps: float | None = None,
) -> LoadReport:
    """Drive ``service`` with a closed-loop mixed workload.

    Args:
        service: Anything with the service surface; only ``query`` is
            needed when ``num_writers == 0``.
        spec: Request-stream shape.
        duration_s: How long to run after all threads are ready.
        num_readers: Closed-loop query threads.
        num_writers: Closed-loop insert/delete threads.  Writer ``w`` owns
            oids ``writer_oid_base + w * 10**6 + i``, so writers never
            collide with each other or (given a sane base) the initial
            population, and every delete targets the writer's own earlier
            insert.
        on_read: Optional callback ``(result, version_or_None)`` run by
            reader threads on every completed read — the concurrency tests
            use it to record (version, result) pairs for oracle replay.
        open_loop_qps: When set, reads switch to open loop: a Poisson
            arrival schedule at this offered rate is drawn up front
            (``spec.seed``-deterministic), reader threads claim arrivals
            in order and sleep until each scheduled instant, and each
            completed read records **two** latencies: service latency
            (into ``latencies_ms``) and scheduled-arrival latency (into
            ``sched_latencies_ms``) — a service that cannot keep up
            accumulates queueing delay in the sched percentiles rather
            than quietly lowering the offered load, while the service
            percentiles stay comparable with closed-loop runs.  Writers
            stay closed-loop.

    Returns:
        A :class:`LoadReport`.
    """
    if num_readers < 0 or num_writers < 0:
        raise ValueError("thread counts must be >= 0")
    if num_readers + num_writers == 0:
        raise ValueError("need at least one thread")
    if open_loop_qps is not None and open_loop_qps <= 0:
        raise ValueError(f"open_loop_qps must be > 0, got {open_loop_qps}")
    reads = OpStats()
    writes = OpStats()
    totals_mutex = threading.Lock()
    violations = [0]
    errors: list = []
    stop = threading.Event()
    start_barrier = threading.Barrier(num_readers + num_writers + 1)
    has_versioned = hasattr(service, "query_versioned")

    schedule: np.ndarray | None = None
    next_arrival = [0]
    arrival_mutex = threading.Lock()
    if open_loop_qps is not None and num_readers > 0:
        arrival_rng = np.random.default_rng(spec.seed + 777)
        gaps = arrival_rng.exponential(
            1.0 / open_loop_qps,
            size=max(1, int(open_loop_qps * duration_s * 2)),
        )
        offsets = np.cumsum(gaps)
        schedule = offsets[offsets < duration_s]

    def _claim_arrival() -> int | None:
        """Next unclaimed arrival index, or None when the schedule is done."""
        with arrival_mutex:
            index = next_arrival[0]
            if index >= len(schedule):
                return None
            next_arrival[0] = index + 1
            return index

    def reader(thread_number: int) -> None:
        rng = np.random.default_rng(spec.seed + thread_number)
        local = OpStats()
        local_violations = 0
        pool = spec.query_pool
        if pool is not None and spec.zipf_s > 0:
            pool_weights = (
                np.arange(1, len(pool) + 1, dtype=np.float64) ** -spec.zipf_s
            )
            pool_weights /= pool_weights.sum()
        else:
            pool_weights = None
        start_barrier.wait()
        epoch = time.monotonic()
        target_s: float | None = None
        while not stop.is_set():
            if schedule is not None:
                arrival = _claim_arrival()
                if arrival is None:
                    break
                target_s = epoch + float(schedule[arrival])
                delay = target_s - time.monotonic()
                if delay > 0:
                    time.sleep(delay)
            if pool is not None:
                vector = pool[rng.choice(len(pool), p=pool_weights)]
            else:
                vector = rng.standard_normal(spec.dim)
            if spec.range_templates:
                lo, hi = spec.range_templates[
                    int(rng.integers(len(spec.range_templates)))
                ]
            else:
                center = _sample_center(rng, spec)
                width = (
                    spec.attr_high - spec.attr_low
                ) * spec.range_fraction
                lo, hi = center - width / 2, center + width / 2
            try:
                with phase("client_read", metric=_CLIENT_READ_MS) as timer:
                    if has_versioned:
                        result, version = service.query_versioned(
                            vector, lo, hi, spec.k, l_budget=spec.l_budget
                        )
                    else:
                        result = service.query(
                            vector, lo, hi, spec.k, l_budget=spec.l_budget
                        )
                        version = None
            except AdmissionError:
                local.rejected += 1
                continue
            except BaseException as error:  # repro: noqa-R004 - tallied
                category = _classify_failure(error)
                setattr(local, category, getattr(local, category) + 1)
                if category == "failed":
                    with totals_mutex:
                        if len(errors) < 5:
                            errors.append(f"read: {error!r}")
                continue
            local.latencies_ms.append(timer.ms)
            if target_s is not None:
                # Open loop: also count from the scheduled arrival, so
                # time spent waiting for a free thread is visible.
                local.sched_latencies_ms.append(
                    (time.monotonic() - target_s) * 1000.0
                )
            local.completed += 1
            if not _probe_result(result, spec.k):
                local_violations += 1
            if on_read is not None:
                on_read(result, version)
        with totals_mutex:
            _merge(reads, local)
            violations[0] += local_violations

    def writer(thread_number: int) -> None:
        rng = np.random.default_rng(spec.seed + 10_000 + thread_number)
        local = OpStats()
        owned: list[int] = []
        next_oid = writer_oid_base + thread_number * 10**6
        start_barrier.wait()
        while not stop.is_set():
            do_delete = owned and rng.random() < spec.delete_fraction
            try:
                with phase(
                    "client_write", metric=_CLIENT_WRITE_MS
                ) as timer:
                    if do_delete:
                        victim = owned.pop(int(rng.integers(len(owned))))
                        service.delete(victim)
                    else:
                        attr = _sample_center(rng, spec)
                        service.insert(
                            next_oid, rng.standard_normal(spec.dim), attr
                        )
                        owned.append(next_oid)
                        next_oid += 1
            except AdmissionError:
                local.rejected += 1
                if do_delete:
                    owned.append(victim)  # not deleted; still live
                continue
            except BaseException as error:  # repro: noqa-R004 - tallied
                category = _classify_failure(error)
                setattr(local, category, getattr(local, category) + 1)
                if do_delete:
                    # Outcome unknown or failed; assume still live so a
                    # later delete retries rather than orphaning the oid.
                    owned.append(victim)
                if category == "failed":
                    with totals_mutex:
                        if len(errors) < 5:
                            errors.append(f"write: {error!r}")
                continue
            local.latencies_ms.append(timer.ms)
            local.completed += 1
        with totals_mutex:
            _merge(writes, local)

    threads = [
        threading.Thread(target=reader, args=(t,), name=f"loadgen-r{t}")
        for t in range(num_readers)
    ] + [
        threading.Thread(target=writer, args=(t,), name=f"loadgen-w{t}")
        for t in range(num_writers)
    ]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    with phase("loadgen_run") as run_timer:
        time.sleep(duration_s)
        stop.set()
        for thread in threads:
            thread.join()
    return LoadReport(
        duration_s=run_timer.ms / 1000.0,
        reads=reads,
        writes=writes,
        violations=violations[0],
        errors=errors,
    )


def _merge(total: OpStats, local: OpStats) -> None:
    total.completed += local.completed
    total.rejected += local.rejected
    total.deadline_exceeded += local.deadline_exceeded
    total.connection_errors += local.connection_errors
    total.failed += local.failed
    total.latencies_ms.extend(local.latencies_ms)
    total.sched_latencies_ms.extend(local.sched_latencies_ms)
