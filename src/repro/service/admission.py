"""Admission control: bounded request queue with timeouts and shedding.

Unbounded queueing turns overload into unbounded latency; a production
serving layer rejects what it cannot serve promptly.  The controller bounds
two things per service:

* **Concurrency** — at most ``max_concurrent`` requests are in flight; an
  arriving request beyond that waits.
* **Queue depth** — at most ``max_queue`` requests wait; beyond that the
  request is rejected immediately with reason ``"queue-full"``.
* **Wait time** — a waiting request that cannot start within ``timeout_s``
  is rejected with reason ``"timeout"``.

Rejections raise :class:`AdmissionError` carrying the reason, so callers
(and the load generator) can distinguish shed load from failures.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

from ..obs import counter, gauge, histogram

__all__ = ["AdmissionError", "AdmissionStats", "AdmissionController"]

_ADM_ACTIVE = gauge("service.admission.active")
_ADM_WAITING = gauge("service.admission.waiting")
_ADM_ADMITTED = counter("service.admission.admitted")
_ADM_REJECTED = counter("service.admission.rejected")
#: Queue wait before an execution slot, for admitted requests.  Shared
#: with the asyncio front door, which waits on the loop instead of a
#: condition variable but records into the same instrument.
_ADM_WAIT_MS = histogram("service.admission.wait_ms")


class AdmissionError(RuntimeError):
    """A request was shed instead of admitted.

    Attributes:
        reason: ``"queue-full"`` or ``"timeout"``.
        kind: The request kind passed to :meth:`AdmissionController.admit`.
    """

    def __init__(self, reason: str, kind: str) -> None:
        super().__init__(f"{kind} request rejected: {reason}")
        self.reason = reason
        self.kind = kind


@dataclass
class AdmissionStats:
    """Counters of one controller's admission decisions.

    Attributes:
        admitted: Requests that entered execution.
        rejected_queue_full: Requests shed because the wait queue was full.
        rejected_timeout: Requests shed after waiting ``timeout_s``.
    """

    admitted: int = 0
    rejected_queue_full: int = 0
    rejected_timeout: int = 0

    @property
    def rejected(self) -> int:
        """Total shed requests."""
        return self.rejected_queue_full + self.rejected_timeout


class AdmissionController:
    """Bounded admission for a service's read and write planes.

    Args:
        max_concurrent: In-flight request ceiling (>= 1).
        max_queue: Waiting request ceiling (>= 0; 0 sheds on first contact
            with a saturated service).
        timeout_s: Longest a request may wait before being shed.

    Usage::

        controller = AdmissionController(max_concurrent=64, max_queue=256)
        with controller.admit("read"):
            ... serve ...
    """

    def __init__(
        self,
        *,
        max_concurrent: int = 64,
        max_queue: int = 256,
        timeout_s: float = 1.0,
    ) -> None:
        if max_concurrent < 1:
            raise ValueError(
                f"max_concurrent must be >= 1, got {max_concurrent}"
            )
        if max_queue < 0:
            raise ValueError(f"max_queue must be >= 0, got {max_queue}")
        if timeout_s < 0:
            raise ValueError(f"timeout_s must be >= 0, got {timeout_s}")
        self.max_concurrent = max_concurrent
        self.max_queue = max_queue
        self.timeout_s = timeout_s
        self.stats = AdmissionStats()
        self._mutex = threading.Lock()
        self._slot_freed = threading.Condition(self._mutex)
        self._active = 0
        self._waiting = 0

    @property
    def active(self) -> int:
        """Requests currently executing (lock-free monitoring read; int
        loads are atomic under the GIL and staleness is acceptable)."""
        return self._active  # repro: noqa-C002

    @property
    def waiting(self) -> int:
        """Requests currently queued (lock-free monitoring read; int
        loads are atomic under the GIL and staleness is acceptable)."""
        return self._waiting  # repro: noqa-C002

    def admit(self, kind: str = "read") -> "_Admitted":
        """Acquire an execution slot or raise :class:`AdmissionError`.

        Returns a context manager releasing the slot on exit.
        """
        started = time.monotonic()
        deadline = started + self.timeout_s
        with self._mutex:
            if self._active >= self.max_concurrent:
                if self._waiting >= self.max_queue:
                    self.stats.rejected_queue_full += 1
                    _ADM_REJECTED.inc()
                    raise AdmissionError("queue-full", kind)
                self._waiting += 1
                _ADM_WAITING.set(self._waiting)
                try:
                    while self._active >= self.max_concurrent:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0 or not self._slot_freed.wait(
                            remaining
                        ):
                            if self._active >= self.max_concurrent:
                                self.stats.rejected_timeout += 1
                                _ADM_REJECTED.inc()
                                raise AdmissionError("timeout", kind)
                finally:
                    self._waiting -= 1
                    _ADM_WAITING.set(self._waiting)
            self._active += 1
            self.stats.admitted += 1
            _ADM_ACTIVE.set(self._active)
            _ADM_ADMITTED.inc()
            _ADM_WAIT_MS.observe((time.monotonic() - started) * 1000.0)
        return _Admitted(self)

    def try_admit(self, kind: str = "read") -> "_Admitted | None":
        """Acquire an execution slot without blocking.

        Returns the slot context manager, or ``None`` — without waiting
        and **without** counting a rejection — when the service is at
        ``max_concurrent`` *or* when threads are already blocked in
        :meth:`admit`: freed slots go to queued waiters first, so a
        polling caller (the asyncio front door re-polls this from the
        event loop, recording its wait into the
        ``service.admission.wait_ms`` histogram) cannot starve the
        blocking plane on a shared controller.
        """
        with self._mutex:
            if self._waiting > 0 or self._active >= self.max_concurrent:
                return None
            self._active += 1
            self.stats.admitted += 1
            _ADM_ACTIVE.set(self._active)
            _ADM_ADMITTED.inc()
        return _Admitted(self)

    def _release(self) -> None:
        with self._mutex:
            self._active -= 1
            self._slot_freed.notify()
            _ADM_ACTIVE.set(self._active)


class _Admitted:
    """Context manager releasing one admitted slot."""

    __slots__ = ("_controller",)

    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> "_Admitted":
        return self

    def __exit__(self, *exc_info) -> bool:
        self._controller._release()
        return False
