"""Service throughput comparison: IndexService vs the global-lock baseline.

Builds one index, deep-copies it so both services serve bitwise-identical
state, then drives each with the same closed-loop workload (N reader
threads + M writer threads, Zipf-shaped query pool, fixed range
templates).  On a single core the snapshot service's edge comes from
amortization, not parallelism: combined reads share range decompositions,
coalesce duplicate requests, and reuse cached ADC tables inside one
``execute_batch`` call, while deferred maintenance keeps ``O(n log n)``
rebuilds out of every client's critical path.  The baseline pays list
price for each of those per request.

Entry points: ``python -m repro serve-bench`` and
``benchmarks/bench_service_throughput.py`` (``--smoke`` for CI).
"""

from __future__ import annotations

import copy
from typing import Sequence

import numpy as np

from .engine import GlobalLockService, IndexService
from .loadgen import LoadReport, WorkloadSpec, run_load
from .maintenance import MaintenanceDaemon

__all__ = ["ServeBenchResult", "run_serve_bench"]

#: Coverages the range templates are drawn from (paper-style grid subset).
TEMPLATE_COVERAGES = (0.01, 0.05, 0.10, 0.40)


class ServeBenchResult:
    """Reports from both services plus the derived comparison.

    Attributes:
        baseline: The :class:`LoadReport` of the global-lock service.
        service: The :class:`LoadReport` of the snapshot service.
        speedup: ``service.total_qps / baseline.total_qps``.
        read_batches: Combined-read batches the snapshot service executed.
        combined_reads_per_batch: Mean reads answered per lock acquisition.
    """

    def __init__(
        self,
        baseline: LoadReport,
        service: LoadReport,
        read_batches: int,
        reads: int,
    ) -> None:
        self.baseline = baseline
        self.service = service
        self.speedup = (
            service.total_qps / baseline.total_qps
            if baseline.total_qps > 0
            else float("inf")
        )
        self.read_batches = read_batches
        self.combined_reads_per_batch = (
            reads / read_batches if read_batches else 0.0
        )

    @property
    def violations(self) -> int:
        """Total consistency-probe failures across both services."""
        return self.baseline.violations + self.service.violations

    @property
    def failed(self) -> int:
        """Total non-shed request failures across both services."""
        return (
            self.baseline.reads.failed
            + self.baseline.writes.failed
            + self.service.reads.failed
            + self.service.writes.failed
        )


def run_serve_bench(
    *,
    n: int = 10_000,
    dim: int = 64,
    num_readers: int = 8,
    num_writers: int = 1,
    duration_s: float = 4.0,
    pool_size: int = 64,
    num_templates: int = 8,
    zipf_s: float = 1.3,
    k: int = 10,
    max_batch: int = 64,
    seed: int = 0,
    open_loop_qps: float | None = None,
    verbose: bool = True,
) -> ServeBenchResult:
    """Run the head-to-head throughput comparison.

    Builds a sift-like RangePQ+ index, then measures the global-lock
    baseline and the snapshot service back-to-back on deep-copied,
    identical index state with an identical workload spec.
    """
    from ..core import AdaptiveLPolicy, RangePQPlus
    from ..datasets import load_workload
    from ..eval.harness import scaled_l_base

    workload = load_workload(
        "sift", n=n, d=dim, num_queries=pool_size, seed=seed
    )
    index = RangePQPlus.build(
        workload.vectors,
        workload.attrs,
        seed=seed,
        l_policy=AdaptiveLPolicy(
            l_base=scaled_l_base("sift", n), r_base=0.10
        ),
    )
    rng = np.random.default_rng(seed + 1)
    templates = [
        workload.range_for_coverage(
            TEMPLATE_COVERAGES[t % len(TEMPLATE_COVERAGES)], rng
        )
        for t in range(num_templates)
    ]
    spec = WorkloadSpec(
        dim=dim,
        attr_low=float(workload.attrs.min()),
        attr_high=float(workload.attrs.max()),
        k=k,
        zipf_s=zipf_s,
        seed=seed,
        query_pool=np.asarray(workload.queries, dtype=np.float64),
        range_templates=[(float(lo), float(hi)) for lo, hi in templates],
    )

    baseline_index = copy.deepcopy(index)
    baseline = GlobalLockService(baseline_index)
    baseline_report = run_load(
        baseline,
        spec,
        duration_s=duration_s,
        num_readers=num_readers,
        num_writers=num_writers,
        open_loop_qps=open_loop_qps,
    )

    service = IndexService(
        index, defer_maintenance=True, max_batch=max_batch
    )
    with MaintenanceDaemon(service, interval_s=0.02):
        service_report = run_load(
            service,
            spec,
            duration_s=duration_s,
            num_readers=num_readers,
            num_writers=num_writers,
            open_loop_qps=open_loop_qps,
        )

    result = ServeBenchResult(
        baseline_report,
        service_report,
        read_batches=service.stats.read_batches,
        reads=service.stats.reads,
    )
    if verbose:
        print(
            f"service throughput — n={n}, d={dim}, {num_readers} readers + "
            f"{num_writers} writer(s), {duration_s:.1f}s per side, "
            f"pool={pool_size}, templates={num_templates}, "
            f"zipf_s={zipf_s}, k={k}"
        )
        print("\n--- global-lock baseline ---")
        print(baseline_report.format())
        print("\n--- snapshot service (combined reads, deferred maint.) ---")
        print(service_report.format())
        print(
            f"\nspeedup         {result.speedup:8.2f}x total QPS"
            f"  ({result.combined_reads_per_batch:.1f} reads/batch over "
            f"{result.read_batches} combined batches)"
        )
    return result


def main(argv: Sequence[str] | None = None) -> int:
    """CLI for the comparison; exit 1 on violations (or, in the full
    profile, when the snapshot service fails to beat the baseline).

    With ``--net``, delegates to the network bench
    (:mod:`repro.frontend.bench`): the asyncio front door is driven over
    TCP, batched vs unbatched, with fairness and event-loop-blocking
    checks.
    """
    import argparse
    import sys as _sys

    argv = list(_sys.argv[1:] if argv is None else argv)
    if "--net" in argv:
        from ..frontend.bench import main as net_bench_main

        argv.remove("--net")
        return net_bench_main(argv)
    parser = argparse.ArgumentParser(
        description="IndexService vs global-lock baseline throughput."
    )
    parser.add_argument("--n", type=int, default=10_000)
    parser.add_argument("--dim", type=int, default=64)
    parser.add_argument("--readers", type=int, default=8)
    parser.add_argument("--writers", type=int, default=1)
    parser.add_argument("--duration", type=float, default=4.0)
    parser.add_argument("--pool", type=int, default=64)
    parser.add_argument("--templates", type=int, default=8)
    parser.add_argument("--zipf", type=float, default=1.3)
    parser.add_argument("--k", type=int, default=10)
    parser.add_argument("--max-batch", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--open-qps",
        type=float,
        default=None,
        help="drive reads open-loop at this offered QPS (Poisson "
        "arrivals); reports scheduled-arrival percentiles alongside "
        "service percentiles",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI profile (n=1200, 4 readers, 1s per side); checks "
        "consistency only, not the speedup",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.dim = 1200, 32
        args.readers, args.duration = 4, 1.0
        args.pool, args.templates = 16, 4
    result = run_serve_bench(
        n=args.n,
        dim=args.dim,
        num_readers=args.readers,
        num_writers=args.writers,
        duration_s=args.duration,
        pool_size=args.pool,
        num_templates=args.templates,
        zipf_s=args.zipf,
        k=args.k,
        max_batch=args.max_batch,
        seed=args.seed,
        open_loop_qps=args.open_qps,
    )
    if result.violations:
        print(f"FAIL: {result.violations} consistency violation(s)")
        return 1
    if result.failed:
        print(f"FAIL: {result.failed} request(s) failed outright")
        return 1
    if not args.smoke and result.speedup <= 1.0:
        print(
            f"FAIL: snapshot service did not beat the baseline "
            f"({result.speedup:.2f}x)"
        )
        return 1
    return 0
