"""Background maintenance daemon for the serving layer.

The paper's lazy-deletion design rebuilds a subtree the moment
``2 · invalid > size(root)`` — correct, but in a server that pays an
``O(n log n)`` compaction inside some unlucky client's ``delete`` call.
:class:`MaintenanceDaemon` moves that debt off the request path: the
service defers the trigger (``defer_maintenance=True``) and the daemon
polls :meth:`IndexService.maintenance_due` — woken early by a per-write
event — and runs the rebuild, ADC-cache invalidation, periodic WAL
snapshot, and (under ``REPRO_SANITIZE=1``) invariant audits from its own
thread, behind the same write lock every client mutation uses.

Usage::

    service = IndexService(index, defer_maintenance=True)
    with MaintenanceDaemon(service, interval_s=0.05):
        ... serve traffic ...
"""

from __future__ import annotations

import threading
from dataclasses import dataclass

from ..obs import histogram, phase

__all__ = ["MaintenanceStats", "MaintenanceDaemon"]

_CYCLE_MS = histogram("service.maintenance_cycle_ms")


@dataclass
class MaintenanceStats:
    """Counters of one daemon's lifetime activity.

    Attributes:
        wakeups: Times the loop woke (timer tick or write signal).
        cycles: :meth:`IndexService.run_maintenance` calls issued.
        rebuilds: Cycles that compacted the index.
        snapshots: Cycles that wrote a WAL snapshot.
        audits: Cycles that ran ``check_invariants``.
        errors: Cycles that raised (the daemon keeps running; the last
            exception is kept in :attr:`MaintenanceDaemon.last_error`).
    """

    wakeups: int = 0
    cycles: int = 0
    rebuilds: int = 0
    snapshots: int = 0
    audits: int = 0
    errors: int = 0


class MaintenanceDaemon:
    """Background thread paying a service's deferred maintenance debt.

    Args:
        service: The :class:`~repro.service.engine.IndexService` to tend.
            The daemon registers a wakeup event with it, so every committed
            write can cut the polling latency to ~zero.
        interval_s: Fallback polling period when no write signals arrive.
        audit: Passed through to ``run_maintenance`` (None = follow
            ``REPRO_SANITIZE``).

    The daemon is a context manager: ``with MaintenanceDaemon(svc):``
    starts on entry and stops (joining the thread) on exit.  A cycle that
    raises is counted and remembered in :attr:`last_error` but does not
    kill the thread — one failed rebuild must not silently stop snapshots.
    """

    def __init__(
        self,
        service,
        *,
        interval_s: float = 0.05,
        audit: bool | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be > 0, got {interval_s}")
        self._service = service
        self._interval_s = interval_s
        self._audit = audit
        self._wakeup = threading.Event()
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None
        self.stats = MaintenanceStats()
        self.last_error: BaseException | None = None
        service.attach_maintenance_wakeup(self._wakeup)

    @property
    def running(self) -> bool:
        """Whether the daemon thread is alive."""
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "MaintenanceDaemon":
        """Start the background thread (idempotent)."""
        if self.running:
            return self
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._run, name="repro-maintenance", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, *, final_cycle: bool = True) -> None:
        """Stop the thread and join it.

        Args:
            final_cycle: Run one last maintenance cycle after the thread
                exits, so pending debt (e.g. a due snapshot) is not lost on
                orderly shutdown.
        """
        if self._thread is None:
            return
        self._stop.set()
        self._wakeup.set()
        self._thread.join()
        self._thread = None
        if final_cycle and self._service.maintenance_due():
            self._cycle()

    def __enter__(self) -> "MaintenanceDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> bool:
        self.stop()
        return False

    def _run(self) -> None:
        while not self._stop.is_set():
            self._wakeup.wait(self._interval_s)
            self._wakeup.clear()
            if self._stop.is_set():
                return
            self.stats.wakeups += 1
            if self._service.maintenance_due():
                self._cycle()

    def _cycle(self) -> None:
        self.stats.cycles += 1
        try:
            with phase("maintenance", metric=_CYCLE_MS):
                report = self._service.run_maintenance(audit=self._audit)
        except BaseException as error:  # repro: noqa-R004 - daemon survives
            self.stats.errors += 1
            self.last_error = error
            return
        if report.get("rebuilt"):
            self.stats.rebuilds += 1
        if report.get("snapshotted"):
            self.stats.snapshots += 1
        if report.get("audited"):
            self.stats.audits += 1
