"""The lint rule catalogue: repo-specific AST checks R001–R013.

Each rule is a pure function over a parsed module plus a
:class:`FileContext`; the engine in :mod:`repro.analysis.lint` handles file
walking, ``# repro: noqa`` filtering, baselines, and reporting.  Rules are
deliberately heuristic — they optimise for catching the failure modes this
codebase actually has (python-level loops on hot paths, silent dtype drops,
index classes that mutate without a ``check_invariants`` audit hook), not
for type-inference-grade precision.  False positives are waived inline with
``# repro: noqa-RXXX`` or absorbed by the committed baseline.

Hot modules — where the ROADMAP demands the code run "as fast as the
hardware allows" — are ``repro/quantization/``, ``repro/ivf/``, and
``repro/core/search.py``; rules R001 and R002 only apply there.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass
from typing import Callable, Iterator

__all__ = ["FileContext", "Rule", "RULES", "is_hot_path"]

#: Path fragments (posix) marking the numpy hot paths of the repo.
_HOT_FRAGMENTS = ("quantization/", "ivf/")
_HOT_SUFFIXES = ("core/search.py",)

#: numpy aliases recognised by the array-sniffing rules.
_NUMPY_NAMES = ("np", "numpy")

#: Array constructors that silently default/upcast dtype when none is given.
_DTYPE_DROPPERS = frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "empty",
        "zeros",
        "ones",
        "full",
        "arange",
    }
)

#: Method names that mutate an index structure (rule R005).
_MUTATOR_NAMES = frozenset(
    {"insert", "delete", "remove", "upsert", "add"}
)

#: Base classes exempting a class from R005 (no concrete state to audit).
_R005_EXEMPT_BASES = frozenset(
    {"Protocol", "Enum", "IntEnum", "StrEnum", "NamedTuple", "TypedDict"}
)

#: Method names that mutate shared index state when called on a member of a
#: serving-layer object (rule R007).  Broader than R005's set: includes the
#: batch mutators and the compaction entry points.
_R007_MUTATORS = frozenset(
    {
        "insert",
        "insert_many",
        "delete",
        "delete_many",
        "add",
        "remove",
        "upsert",
        "rebuild",
        "clear_caches",
        "_rebuild_all",
        "_rebucket_all",
    }
)


def is_hot_path(path: str) -> bool:
    """Whether a (posix-style) path belongs to the repo's numpy hot modules."""
    normalized = path.replace("\\", "/")
    return any(fragment in normalized for fragment in _HOT_FRAGMENTS) or (
        normalized.endswith(_HOT_SUFFIXES)
    )


@dataclass(frozen=True)
class FileContext:
    """Per-file inputs handed to every rule.

    Attributes:
        path: Display path of the file (posix style, repo relative).
        lines: Raw physical source lines (for snippets and noqa parsing).
        hot: Whether the file is one of the repo's numpy hot modules.
    """

    path: str
    lines: tuple[str, ...]
    hot: bool


@dataclass(frozen=True)
class Rule:
    """One lint rule: an ID, a summary, and its AST check.

    Attributes:
        id: Stable identifier (``R001`` … ``R006``) used by noqa/baseline.
        summary: One-line description shown by ``lint --list-rules``.
        hot_only: Whether the rule applies only to hot modules.
        check: Callable yielding ``(lineno, message)`` findings.
    """

    id: str
    summary: str
    hot_only: bool
    check: Callable[[ast.Module, FileContext], Iterator[tuple[int, str]]]


def _is_numpy_call(node: ast.AST) -> bool:
    """Whether ``node`` is a direct ``np.<fn>(...)`` / ``numpy.<fn>(...)`` call."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and isinstance(node.func.value, ast.Name)
        and node.func.value.id in _NUMPY_NAMES
    )


def _check_r001(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R001: python-level ``for`` loop over an ndarray in a hot module.

    Flags loops whose iterable is a direct numpy call or a name assigned
    from one — both iterate element-by-element in the interpreter where a
    vectorized or chunked formulation keeps the work in C.
    """
    array_names: set[str] = set()
    for node in ast.walk(module):
        if (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and _is_numpy_call(node.value)
        ):
            array_names.add(node.targets[0].id)
    for node in ast.walk(module):
        if not isinstance(node, ast.For):
            continue
        iterable = node.iter
        if _is_numpy_call(iterable) or (
            isinstance(iterable, ast.Name) and iterable.id in array_names
        ):
            yield (
                node.lineno,
                "python-level for loop over an ndarray on a hot path; "
                "vectorize the body or drain whole chunks",
            )


def _check_r002(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R002: array constructor without an explicit ``dtype`` in a hot module.

    ``np.asarray``/``np.empty`` and friends silently default to float64 (or
    infer from the input), so one missing ``dtype=`` can upcast an entire
    hot path — e.g. uint8 PQ codes to float64 — or drop a carefully chosen
    dtype on a copy.
    """
    for node in ast.walk(module):
        if not _is_numpy_call(node):
            continue
        assert isinstance(node, ast.Call)
        if node.func.attr not in _DTYPE_DROPPERS:  # type: ignore[union-attr]
            continue
        keywords = {kw.arg for kw in node.keywords}
        if "dtype" in keywords or None in keywords:  # None == **kwargs
            continue
        yield (
            node.lineno,
            f"np.{node.func.attr}(...) without an explicit dtype on a hot "
            "path risks a silent float64 upcast / dtype drop",  # type: ignore[union-attr]
        )


def _check_r003(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R003: mutable default argument (shared across calls)."""
    for node in ast.walk(module):
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        defaults = list(node.args.defaults) + [
            default for default in node.args.kw_defaults if default is not None
        ]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set)) or (
                isinstance(default, ast.Call)
                and isinstance(default.func, ast.Name)
                and default.func.id in ("list", "dict", "set")
            )
            if mutable:
                yield (
                    default.lineno,
                    f"mutable default argument in {node.name}(); "
                    "use None and construct inside the body",
                )


def _exception_names(node: ast.expr | None) -> Iterator[str]:
    """Names caught by an ``except`` clause (flattening tuples).

    Handles plain names, arbitrarily nested tuples — ``except
    (Exception,):`` and ``except (ValueError, Exception):`` are as broad
    as the unparenthesized form — and module-qualified attributes like
    ``builtins.Exception``.
    """
    if node is None:
        return
    if isinstance(node, ast.Name):
        yield node.id
    elif isinstance(node, ast.Attribute):
        yield node.attr
    elif isinstance(node, ast.Tuple):
        for element in node.elts:
            yield from _exception_names(element)


def _check_r004(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R004: bare or over-broad ``except`` swallowing unrelated failures."""
    for node in ast.walk(module):
        if not isinstance(node, ast.ExceptHandler):
            continue
        if node.type is None:
            yield (node.lineno, "bare except; name the concrete error types")
            continue
        broad = [
            name
            for name in _exception_names(node.type)
            if name in ("Exception", "BaseException")
        ]
        if broad:
            yield (
                node.lineno,
                f"over-broad except {broad[0]}; narrow to the concrete "
                "error types the block can raise",
            )


def _check_r005(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R005: public mutating index class without a ``check_invariants`` audit.

    Any public class exposing ``insert``/``delete``/``add``/``remove``/
    ``upsert`` maintains internal structure that mixed workloads can rot
    (Yi, *Dynamic Indexability*); the sanitizer can only audit classes that
    expose ``check_invariants``.
    """
    for node in ast.walk(module):
        if not isinstance(node, ast.ClassDef):
            continue
        if node.name.startswith("_"):
            continue
        base_names = set()
        for base in node.bases:
            if isinstance(base, ast.Name):
                base_names.add(base.id)
            elif isinstance(base, ast.Attribute):
                base_names.add(base.attr)
        if base_names & _R005_EXEMPT_BASES:
            continue
        methods = {
            item.name
            for item in node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }
        if methods & _MUTATOR_NAMES and "check_invariants" not in methods:
            yield (
                node.lineno,
                f"public mutating class {node.name} has no check_invariants "
                "method, so the sanitizer cannot audit it",
            )


def _check_r006(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R006: ``np.argsort(...)[:k]`` where ``np.argpartition`` suffices.

    A full sort is ``O(n log n)``; selecting the top-``k`` then sorting only
    those is ``O(n + k log k)`` — the pattern every top-k path in this repo
    uses (see ``repro/ivf/ivfpq.py::_top_k``).
    """
    for node in ast.walk(module):
        if not isinstance(node, ast.Subscript):
            continue
        value = node.value
        if not (
            _is_numpy_call(value)
            and value.func.attr == "argsort"  # type: ignore[union-attr]
        ):
            continue
        index = node.slice
        if (
            isinstance(index, ast.Slice)
            and index.lower is None
            and index.upper is not None
            and index.step is None
        ):
            yield (
                node.lineno,
                "np.argsort(...)[:k] on a top-k path; use np.argpartition "
                "then sort only the selected k",
            )


def _r007_root_name(expr: ast.expr) -> str | None:
    """The name at the root of an attribute/subscript/call chain."""
    while isinstance(expr, (ast.Attribute, ast.Subscript, ast.Call)):
        if isinstance(expr, ast.Attribute):
            expr = expr.value
        elif isinstance(expr, ast.Subscript):
            expr = expr.value
        else:
            expr = expr.func
    return expr.id if isinstance(expr, ast.Name) else None


def _r007_is_guard(node: ast.With) -> bool:
    """Whether a ``with`` statement acquires a write-side lock.

    Recognised guards: a call to an attribute named ``write_locked``, or
    any context expression mentioning an attribute or name containing
    ``lock`` / ``mutex`` (``with self._mutex:``, ``with lock:``).
    """
    for item in node.items:
        for sub in ast.walk(item.context_expr):
            if isinstance(sub, ast.Attribute) and (
                sub.attr == "write_locked"
                or "lock" in sub.attr.lower()
                or "mutex" in sub.attr.lower()
            ):
                return True
            if isinstance(sub, ast.Name) and (
                "lock" in sub.id.lower() or "mutex" in sub.id.lower()
            ):
                return True
    return False


def _r007_scan(
    node: ast.AST, guarded: bool
) -> Iterator[tuple[int, str]]:
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return  # nested scopes are scanned by their own top-level visit
    if isinstance(node, ast.With):
        guarded = guarded or _r007_is_guard(node)
    if (
        not guarded
        and isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in _R007_MUTATORS
        and not isinstance(node.func.value, ast.Name)  # self.insert() is API
        and _r007_root_name(node.func.value) == "self"
    ):
        yield (
            node.lineno,
            f".{node.func.attr}(...) mutates shared index state outside a "
            "write_locked/mutex-guarded section of the service write path",
        )
    for child in ast.iter_child_nodes(node):
        yield from _r007_scan(child, guarded)


#: Path fragments (posix) where R008 demands the obs timing primitives.
_R008_FRAGMENTS = ("core/", "ivf/", "quantization/", "service/")

#: ``time`` attributes R008 flags (monotonic/sleep are not measurements).
_R008_BANNED_ATTRS = ("time", "perf_counter", "perf_counter_ns")


def _check_r008(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R008: raw wall-clock measurement in an instrumented module.

    Inside ``repro/core/``, ``repro/ivf/``, ``repro/quantization/``, and
    ``repro/service/`` every duration measurement must go through
    :func:`repro.obs.timers.phase` (or a :class:`PhaseTimer`): it is the
    single primitive that keeps trace spans, metrics histograms, and
    per-query stats consistent.  A raw ``time.time()`` /
    ``time.perf_counter()`` call produces timing the observability layer
    never sees.  ``repro/obs/`` itself is exempt (it implements the
    primitive), as are ``time.monotonic`` (deadlines) and ``time.sleep``.
    """
    normalized = ctx.path.replace("\\", "/")
    if "obs/" in normalized or not any(
        fragment in normalized for fragment in _R008_FRAGMENTS
    ):
        return
    for node in ast.walk(module):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id == "time"
            and func.attr in _R008_BANNED_ATTRS
        ):
            name = f"time.{func.attr}"
        elif isinstance(func, ast.Name) and func.id in (
            "perf_counter",
            "perf_counter_ns",
        ):
            name = func.id
        else:
            continue
        yield (
            node.lineno,
            f"raw {name}() in an instrumented module; measure through "
            "repro.obs.phase() so spans, histograms, and stats agree",
        )


#: Methods that pickle their arguments across a process boundary (R009).
_R009_SEND_METHODS = frozenset(
    {
        "put",
        "put_nowait",
        "send",
        "send_bytes",
        "submit",
        "apply_async",
        "map",
        "starmap",
    }
)

#: Identifier fragments naming bulk vector storage.  Deliberately NOT
#: including per-task payloads (a single query vector, a plan's cluster
#: list) — those are small by construction.
_R009_STORAGE_HINTS = ("codes", "codebook", "centers", "vectors", "embedding")


def _r009_storage_mention(node: ast.AST) -> str | None:
    """First identifier (or string key) in ``node`` naming vector storage."""
    for sub in ast.walk(node):
        if isinstance(sub, ast.Name):
            ident = sub.id
        elif isinstance(sub, ast.Attribute):
            ident = sub.attr
        elif isinstance(sub, ast.Constant) and isinstance(sub.value, str):
            ident = sub.value
        else:
            continue
        lowered = ident.lower()
        if any(hint in lowered for hint in _R009_STORAGE_HINTS):
            return ident
    return None


def _check_r009(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R009: bulk vector storage pickled through a task channel.

    The whole point of ``repro.parallel`` is that workers read PQ codes,
    codebooks, and centers from shared memory; a ``.put(...)`` /
    ``.send(...)`` / ``.submit(...)`` whose argument mentions one of
    those arrays serializes megabytes per task and silently reintroduces
    the copy the subsystem exists to avoid.  Tasks must carry the shm
    *manifest* (block names) instead.  Only ``repro/parallel/`` is
    scanned — elsewhere pickling an array may be the right call.
    """
    if "parallel/" not in ctx.path.replace("\\", "/"):
        return
    for node in ast.walk(module):
        if not (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in _R009_SEND_METHODS
        ):
            continue
        arguments = list(node.args) + [kw.value for kw in node.keywords]
        for argument in arguments:
            mention = _r009_storage_mention(argument)
            if mention is not None:
                yield (
                    node.lineno,
                    f".{node.func.attr}(...) ships {mention!r} through a "
                    "task channel (pickled per task); pass the shm "
                    "manifest and attach in the worker instead",
                )
                break


#: Path fragments (posix) where R010 forbids raw kernel-backend imports.
_R010_FRAGMENTS = ("core/", "ivf/", "tree/")

#: The backend module names behind the repro.kernels dispatcher.
_R010_BACKENDS = ("reference", "fast")


def _check_r010(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R010: raw kernel-backend import bypassing the repro.kernels dispatcher.

    Hot-path call sites in ``repro/core/``, ``repro/ivf/``, and
    ``repro/tree/`` must go through the dispatcher functions in
    :mod:`repro.kernels` so ``REPRO_KERNEL_BACKEND`` / ``set_backend()``
    govern every kernel invocation.  Importing ``repro.kernels.reference``
    or ``repro.kernels.fast`` (or the ``reference``/``fast`` names out of
    ``repro.kernels``) pins one implementation and silently exempts that
    call site from backend selection.  ``repro/kernels/`` itself is exempt
    (backends may share each other's code).
    """
    normalized = ctx.path.replace("\\", "/")
    if "kernels/" in normalized or not any(
        fragment in normalized for fragment in _R010_FRAGMENTS
    ):
        return
    backend_suffixes = tuple(f"kernels.{name}" for name in _R010_BACKENDS)
    for node in ast.walk(module):
        if isinstance(node, ast.ImportFrom):
            source = node.module or ""
            if source.endswith(backend_suffixes):
                yield (
                    node.lineno,
                    f"import from raw kernel backend {source!r}; route "
                    "through the repro.kernels dispatcher",
                )
            elif source == "kernels" or source.endswith(".kernels"):
                pinned = sorted(
                    alias.name
                    for alias in node.names
                    if alias.name in _R010_BACKENDS
                )
                if pinned:
                    yield (
                        node.lineno,
                        f"import of kernel backend module(s) {pinned} "
                        "bypasses the repro.kernels dispatcher",
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith(backend_suffixes):
                    yield (
                        node.lineno,
                        f"import of raw kernel backend {alias.name!r}; "
                        "route through the repro.kernels dispatcher",
                    )


#: Path fragment (posix) where R011 forbids blocking calls in coroutines.
_R011_FRAGMENT = "frontend/"

#: Identifier fragments naming synchronization primitives (R011: a
#: blocking ``.acquire()`` on one of these stalls the event loop).
_R011_LOCK_HINTS = ("lock", "mutex", "sem", "condition")


def _r011_lock_root(expr: ast.expr) -> bool:
    """Whether an attribute chain's identifiers suggest a sync primitive."""
    while isinstance(expr, (ast.Attribute, ast.Subscript)):
        if isinstance(expr, ast.Attribute):
            if any(hint in expr.attr.lower() for hint in _R011_LOCK_HINTS):
                return True
            expr = expr.value
        else:
            expr = expr.value
    return isinstance(expr, ast.Name) and any(
        hint in expr.id.lower() for hint in _R011_LOCK_HINTS
    )


def _r011_blocking_call(node: ast.Call) -> str | None:
    """The diagnostic for a blocking primitive call, or None."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "open":
        return "synchronous open() blocks the event loop on file I/O"
    if not isinstance(func, ast.Attribute):
        return None
    root = func.value
    if (
        isinstance(root, ast.Name)
        and root.id == "time"
        and func.attr == "sleep"
    ):
        return "time.sleep() stalls the event loop; await asyncio.sleep()"
    if isinstance(root, ast.Name) and root.id == "socket":
        return (
            f"synchronous socket.{func.attr}(...) in a coroutine; use "
            "asyncio streams"
        )
    if func.attr == "acquire" and _r011_lock_root(root):
        nonblocking = any(
            isinstance(arg, ast.Constant) and arg.value is False
            for arg in node.args
        ) or any(
            kw.arg == "blocking"
            and isinstance(kw.value, ast.Constant)
            and kw.value.value is False
            for kw in node.keywords
        )
        if not nonblocking:
            return (
                "blocking .acquire() on a sync primitive stalls the event "
                "loop; use asyncio.Lock or acquire(blocking=False)"
            )
    return None


def _r011_scan(node: ast.AST) -> Iterator[tuple[int, str]]:
    """Scan one coroutine-body statement, stopping at nested scopes
    (a nested ``def`` may legitimately run on an executor thread)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    if isinstance(node, ast.Call):
        diagnostic = _r011_blocking_call(node)
        if diagnostic is not None:
            yield (node.lineno, diagnostic)
    for child in ast.iter_child_nodes(node):
        yield from _r011_scan(child)


def _check_r011(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R011: blocking primitive inside a coroutine body in repro/frontend/.

    The front door's contract is that the event loop never blocks: every
    slow operation either awaits or runs on the executor.  Inside any
    ``async def`` in ``repro/frontend/``, this rule flags ``time.sleep``,
    a blocking ``.acquire()`` on a lock/mutex/semaphore (unless called
    with ``blocking=False``), synchronous ``socket`` module calls, and
    builtin ``open()``.  Statements inside nested ``def``s are exempt —
    those run on executor threads by construction here.
    """
    if _R011_FRAGMENT not in ctx.path.replace("\\", "/"):
        return
    for func in ast.walk(module):
        if not isinstance(func, ast.AsyncFunctionDef):
            continue
        for statement in func.body:
            yield from _r011_scan(statement)


#: Path fragments (posix) where raw socket use is sanctioned (R012).
_R012_ALLOWED_FRAGMENTS = ("cluster/", "frontend/")


def _check_r012(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R012: raw ``socket`` import outside the sanctioned network layers.

    All network I/O in this repo lives in exactly two places:
    ``repro/frontend/`` (the async front door and its framing) and
    ``repro/cluster/`` (the replication stream and node serving).  A
    ``socket`` import anywhere else is a side channel: it bypasses the
    length-prefixed framing, the protocol error codes, and the
    supervision/chaos story those layers provide.  Route new network
    code through them (or extend them) instead.
    """
    normalized = ctx.path.replace("\\", "/")
    if any(
        fragment in normalized for fragment in _R012_ALLOWED_FRAGMENTS
    ):
        return
    for node in ast.walk(module):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "socket" or alias.name.startswith("socket."):
                    yield (
                        node.lineno,
                        "raw socket import outside repro/cluster/ and "
                        "repro/frontend/; network I/O belongs in those "
                        "layers (length-prefixed framing, supervision)",
                    )
        elif isinstance(node, ast.ImportFrom):
            if (node.module or "") == "socket":
                yield (
                    node.lineno,
                    "raw socket import outside repro/cluster/ and "
                    "repro/frontend/; network I/O belongs in those "
                    "layers (length-prefixed framing, supervision)",
                )


#: Attribute names (underscores stripped) that are controller-managed
#: serving knobs (rule R013).
_R013_KNOBS = frozenset(
    {"l_policy", "l_base", "r_base", "nprobe", "override_ms"}
)

#: Path fragments (posix) R013 scans — the serving layers whose knobs the
#: control plane owns.
_R013_FRAGMENTS = ("service/", "frontend/", "cluster/")


def _r013_scan(node: ast.AST) -> Iterator[tuple[int, str]]:
    """Scan one statement for knob writes, stopping at nested scopes
    (nested functions and classes are scanned by their own visit)."""
    if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
        return
    targets: list[ast.expr] = []
    if isinstance(node, ast.Assign):
        targets = list(node.targets)
    elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
        targets = [node.target]
    for target in targets:
        for sub in ast.walk(target):
            if (
                isinstance(sub, ast.Attribute)
                and sub.attr.lstrip("_") in _R013_KNOBS
            ):
                yield (
                    node.lineno,
                    f"direct write to controller-managed knob {sub.attr!r}; "
                    "go through the sanctioned setter "
                    "(IndexService.set_l_policy / "
                    "BatchWindowPolicy.set_override) so the control plane's "
                    "envelopes and rollback stay authoritative",
                )
    for child in ast.iter_child_nodes(node):
        yield from _r013_scan(child)


def _check_r013(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R013: direct write to a controller-managed knob outside repro/control/.

    The feedback controller (:mod:`repro.control`) owns the serving knobs
    — L policies (``l_policy``/``l_base``/``r_base``/``nprobe``) and the
    micro-batch window override — and guarantees every value stays inside
    its :class:`~repro.control.KnobEnvelope` with one-step rollback.  A
    direct attribute write in the serving layers (``repro/service/``,
    ``repro/frontend/``, ``repro/cluster/``) bypasses the envelope clamp,
    the version bump that republishes shared/tiered placements, and the
    decision log.  Exempt: ``__init__`` (seeding a knob before any
    controller exists) and ``repro/control/`` itself.  The sanctioned
    setters carry inline ``# repro: noqa-R013`` waivers at the single
    write each performs.
    """
    normalized = ctx.path.replace("\\", "/")
    if "control/" in normalized or not any(
        fragment in normalized for fragment in _R013_FRAGMENTS
    ):
        return
    for func in ast.walk(module):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name == "__init__":
            continue
        for statement in func.body:
            yield from _r013_scan(statement)


def _check_r007(
    module: ast.Module, ctx: FileContext
) -> Iterator[tuple[int, str]]:
    """R007: unguarded mutation of shared index state in the serving layer.

    In ``repro/service/`` every mutation of a member object (``self._index
    .insert(...)``, ``self._shards[i].delete(...)``, …) must happen under
    the write side of the service's lock: concurrent snapshot readers are
    walking the same structures.  Exempt: ``__init__`` (no concurrency
    yet) and ``*_unlocked`` helpers (callers hold the lock by contract).
    Delegations to objects that lock internally are waived inline with
    ``# repro: noqa-R007``.
    """
    if "service/" not in ctx.path.replace("\\", "/"):
        return
    for func in ast.walk(module):
        if not isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        if func.name == "__init__" or func.name.endswith("_unlocked"):
            continue
        for statement in func.body:
            yield from _r007_scan(statement, False)


#: The rule registry, in report order.
RULES: tuple[Rule, ...] = (
    Rule(
        "R001",
        "python for loop over an ndarray in a hot module",
        True,
        _check_r001,
    ),
    Rule(
        "R002",
        "array constructor without explicit dtype in a hot module",
        True,
        _check_r002,
    ),
    Rule("R003", "mutable default argument", False, _check_r003),
    Rule("R004", "bare or over-broad except", False, _check_r004),
    Rule(
        "R005",
        "public mutating index class missing check_invariants",
        False,
        _check_r005,
    ),
    Rule(
        "R006",
        "np.argsort where np.argpartition suffices on a top-k path",
        False,
        _check_r006,
    ),
    Rule(
        "R007",
        "unguarded mutation of shared index state in the serving layer",
        False,
        _check_r007,
    ),
    Rule(
        "R008",
        "raw time.time()/perf_counter() in an instrumented module",
        False,
        _check_r008,
    ),
    Rule(
        "R009",
        "bulk vector storage pickled through a task channel in repro/parallel/",
        False,
        _check_r009,
    ),
    Rule(
        "R010",
        "raw kernel-backend import bypassing the repro.kernels dispatcher",
        False,
        _check_r010,
    ),
    Rule(
        "R011",
        "blocking primitive inside a coroutine body in repro/frontend/",
        False,
        _check_r011,
    ),
    Rule(
        "R012",
        "raw socket import outside repro/cluster/ and repro/frontend/",
        False,
        _check_r012,
    ),
    Rule(
        "R013",
        "direct write to a controller-managed knob outside repro/control/",
        False,
        _check_r013,
    ),
)
