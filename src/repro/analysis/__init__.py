"""Repo-specific static analysis and runtime index sanitation.

The paper's correctness rests on structural invariants — ``α``-balance on
subtree sizes, augmented per-subtree cluster aggregates, the lazy-deletion
rebuild rule ``2·inv > size(root)``, RangePQ+'s two-layer bucket consistency —
and its performance rests on the numpy hot paths staying vectorized.  This
package machine-checks both on every PR:

* :mod:`repro.analysis.lint` — an AST-based lint pass with repo-specific
  rules (R001–R009), an inline ``# repro: noqa-RXXX`` escape hatch, text and
  JSON reporters, and a committed baseline so pre-existing findings do not
  block CI.  Run it with ``python -m repro.analysis lint src/``.
* :mod:`repro.analysis.concurrency` — interprocedural lock-discipline
  analysis: guard-set inference + race detection (C001–C003) and the
  cross-class lock-order deadlock pass (L001).  Run with
  ``python -m repro.analysis race`` / ``... locks --graph``.
* :mod:`repro.analysis.contracts` — numpy dtype/shape contract checking
  (D001–D003) plus the runtime shm-manifest validator the sanitizer uses.
  Run with ``python -m repro.analysis contracts``.
* :mod:`repro.analysis.sanitize` — a runtime sanitizer that audits every
  index structure's ``check_invariants`` after every N mutations, enabled
  globally with ``REPRO_SANITIZE=1`` or per-index with
  :func:`~repro.analysis.sanitize.sanitized`.

See ``docs/analysis.md`` for the rule catalogue and workflows.
"""

from .concurrency import (
    LockEdge,
    analyze_lock_order,
    analyze_race_paths,
    analyze_race_source,
    collect_lock_edges,
    render_lock_graph,
)
from .contracts import (
    MANIFEST_BLOCK_DTYPES,
    NAME_CONTRACTS,
    analyze_contracts_paths,
    analyze_contracts_source,
    contract_for_name,
    manifest_contract_errors,
)
from .lint import (
    Finding,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    prune_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .rules import RULES, Rule
from .sanitize import (
    SanitizedIndex,
    install,
    sanitize_enabled,
    sanitized,
    uninstall,
)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "prune_baseline",
    "render_text",
    "render_json",
    "LockEdge",
    "analyze_race_source",
    "analyze_race_paths",
    "analyze_lock_order",
    "collect_lock_edges",
    "render_lock_graph",
    "NAME_CONTRACTS",
    "MANIFEST_BLOCK_DTYPES",
    "contract_for_name",
    "analyze_contracts_source",
    "analyze_contracts_paths",
    "manifest_contract_errors",
    "SanitizedIndex",
    "sanitized",
    "install",
    "uninstall",
    "sanitize_enabled",
]
