"""Repo-specific static analysis and runtime index sanitation.

The paper's correctness rests on structural invariants — ``α``-balance on
subtree sizes, augmented per-subtree cluster aggregates, the lazy-deletion
rebuild rule ``2·inv > size(root)``, RangePQ+'s two-layer bucket consistency —
and its performance rests on the numpy hot paths staying vectorized.  This
package machine-checks both on every PR:

* :mod:`repro.analysis.lint` — an AST-based lint pass with repo-specific
  rules (R001–R009), an inline ``# repro: noqa-RXXX`` escape hatch, text and
  JSON reporters, and a committed baseline so pre-existing findings do not
  block CI.  Run it with ``python -m repro.analysis lint src/``.
* :mod:`repro.analysis.sanitize` — a runtime sanitizer that audits every
  index structure's ``check_invariants`` after every N mutations, enabled
  globally with ``REPRO_SANITIZE=1`` or per-index with
  :func:`~repro.analysis.sanitize.sanitized`.

See ``docs/analysis.md`` for the rule catalogue and workflows.
"""

from .lint import (
    Finding,
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .rules import RULES, Rule
from .sanitize import (
    SanitizedIndex,
    install,
    sanitize_enabled,
    sanitized,
    uninstall,
)

__all__ = [
    "Finding",
    "Rule",
    "RULES",
    "lint_source",
    "lint_paths",
    "load_baseline",
    "apply_baseline",
    "write_baseline",
    "render_text",
    "render_json",
    "SanitizedIndex",
    "sanitized",
    "install",
    "uninstall",
    "sanitize_enabled",
]
