"""The lint engine: file walking, noqa filtering, baselines, reporters.

The engine applies every rule in :data:`repro.analysis.rules.RULES` to each
python file, drops findings waived by an inline ``# repro: noqa`` comment,
subtracts the committed baseline (so pre-existing findings never block CI),
and renders the remainder as text or JSON::

    python -m repro.analysis lint src/                # baseline-aware
    python -m repro.analysis lint src/ --no-baseline  # everything
    python -m repro.analysis lint src/ --write-baseline

Baseline entries are keyed by ``(rule, path, stripped line text)`` rather
than line numbers, so unrelated edits above a finding do not invalidate it.
"""

from __future__ import annotations

import ast
import json
import re
from collections import Counter
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, Sequence

from .rules import RULES, FileContext, is_hot_path

__all__ = [
    "Finding",
    "DEFAULT_BASELINE_NAME",
    "lint_source",
    "lint_paths",
    "iter_sources",
    "noqa_waives",
    "finding_at",
    "load_baseline",
    "write_baseline",
    "apply_baseline",
    "prune_baseline",
    "render_text",
    "render_json",
]

#: File name of the committed baseline, looked up in the working directory.
DEFAULT_BASELINE_NAME = "lint-baseline.json"

#: ``# repro: noqa`` / ``# repro: noqa-R001`` / ``# repro: noqa-R001,C002``
#: (rule families: R = lint, C = concurrency/races, L = lock order,
#: D = dtype/shape contracts)
_NOQA_PATTERN = re.compile(
    r"#\s*repro:\s*noqa(?:-(?P<codes>[A-Z]\d{3}(?:\s*,\s*[A-Z]\d{3})*))?",
)


@dataclass(frozen=True)
class Finding:
    """One lint finding.

    Attributes:
        rule: Rule ID (``R001`` … ``R006``).
        path: Repo-relative posix path of the offending file.
        line: 1-based line number.
        message: Human-readable explanation.
        text: The stripped source line (baseline fingerprint component).
    """

    rule: str
    path: str
    line: int
    message: str
    text: str

    def fingerprint(self) -> tuple[str, str, str]:
        """Line-number-free identity used for baseline matching."""
        return (self.rule, self.path, self.text)


def _noqa_codes(line: str) -> set[str] | None:
    """Rule IDs waived on a physical line (empty set = waive all)."""
    match = _NOQA_PATTERN.search(line)
    if match is None:
        return None
    codes = match.group("codes")
    if not codes:
        return set()
    return {code.strip() for code in codes.split(",")}


def noqa_waives(rule_id: str, line: str) -> bool:
    """Whether an inline ``# repro: noqa`` comment waives ``rule_id``."""
    waived = _noqa_codes(line)
    return waived is not None and (not waived or rule_id in waived)


def finding_at(
    rule: str,
    path: str,
    lineno: int,
    message: str,
    lines: Sequence[str],
) -> Finding | None:
    """Build a :class:`Finding` anchored at a source line, honouring noqa.

    Shared by the concurrency/contract passes so their findings carry the
    same fingerprint shape (and waiver semantics) as the lint rules.
    Returns ``None`` when the line carries a matching noqa comment.
    """
    text = lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
    if noqa_waives(rule, text):
        return None
    return Finding(rule=rule, path=path, line=lineno, message=message, text=text)


def lint_source(
    source: str, path: str, *, hot: bool | None = None
) -> list[Finding]:
    """Lint one python source string.

    Args:
        source: The file contents.
        path: Display path; also decides hot-module rule applicability.
        hot: Override the hot-module classification (tests use this).

    Returns:
        Findings sorted by (path, line, rule), noqa already applied.
    """
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError as error:
        return [
            Finding(
                rule="R000",
                path=path,
                line=error.lineno or 1,
                message=f"syntax error: {error.msg}",
                text="",
            )
        ]
    lines = tuple(source.splitlines())
    ctx = FileContext(
        path=path,
        lines=lines,
        hot=is_hot_path(path) if hot is None else hot,
    )
    findings: list[Finding] = []
    for rule in RULES:
        if rule.hot_only and not ctx.hot:
            continue
        for lineno, message in rule.check(module, ctx):
            text = (
                lines[lineno - 1].strip() if 0 < lineno <= len(lines) else ""
            )
            waived = _noqa_codes(text)
            if waived is not None and (not waived or rule.id in waived):
                continue
            findings.append(
                Finding(
                    rule=rule.id,
                    path=path,
                    line=lineno,
                    message=message,
                    text=text,
                )
            )
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def _iter_python_files(paths: Sequence[str | Path]) -> Iterable[Path]:
    for path in paths:
        path = Path(path)
        if path.is_dir():
            yield from sorted(path.rglob("*.py"))
        elif path.suffix == ".py":
            yield path


def iter_sources(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> Iterable[tuple[str, str]]:
    """Yield ``(display_path, source)`` for every python file under paths.

    ``display_path`` is made relative to ``root`` (default: cwd) so finding
    fingerprints match regardless of where the analysis runs from.
    """
    root = Path(root) if root is not None else Path.cwd()
    for file_path in _iter_python_files(paths):
        resolved = file_path.resolve()
        try:
            display = resolved.relative_to(root.resolve()).as_posix()
        except ValueError:
            display = resolved.as_posix()
        yield display, file_path.read_text(encoding="utf-8")


def lint_paths(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> list[Finding]:
    """Lint files and directories (recursively).

    Args:
        paths: Files or directories to scan.
        root: Directory findings' paths are made relative to (default: cwd),
            so baseline entries match regardless of where lint runs from.

    Returns:
        All findings across the scanned files, sorted.
    """
    findings: list[Finding] = []
    for display, source in iter_sources(paths, root=root):
        findings.extend(lint_source(source, display))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def load_baseline(path: str | Path) -> Counter:
    """Load a baseline file into a fingerprint multiset.

    Returns an empty counter if the file does not exist.
    """
    path = Path(path)
    if not path.exists():
        return Counter()
    payload = json.loads(path.read_text(encoding="utf-8"))
    counter: Counter = Counter()
    for entry in payload.get("findings", []):
        counter[(entry["rule"], entry["path"], entry["text"])] += 1
    return counter


def write_baseline(findings: Sequence[Finding], path: str | Path) -> Path:
    """Write the given findings as the new baseline file."""
    path = Path(path)
    payload = {
        "version": 1,
        "findings": [
            {"rule": f.rule, "path": f.path, "text": f.text}
            for f in findings
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return path


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> list[Finding]:
    """Drop findings covered by the baseline multiset; keep the rest."""
    remaining = Counter(baseline)
    fresh: list[Finding] = []
    for finding in findings:
        key = finding.fingerprint()
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
        else:
            fresh.append(finding)
    return fresh


def prune_baseline(
    findings: Sequence[Finding], path: str | Path
) -> tuple[int, int]:
    """Drop baseline entries that no longer match any current finding.

    Args:
        findings: Current findings computed *without* baseline subtraction.
        path: Baseline file to rewrite in place.

    Returns:
        ``(kept, dropped)`` entry counts.  Missing file counts as empty.
    """
    path = Path(path)
    if not path.exists():
        return (0, 0)
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", [])
    current = Counter(f.fingerprint() for f in findings)
    kept: list[dict] = []
    for entry in entries:
        key = (entry["rule"], entry["path"], entry["text"])
        if current.get(key, 0) > 0:
            current[key] -= 1
            kept.append(entry)
    payload["findings"] = kept
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return (len(kept), len(entries) - len(kept))


def render_text(findings: Sequence[Finding], *, label: str = "lint") -> str:
    """Human-readable one-line-per-finding report."""
    if not findings:
        return f"{label}: clean"
    lines = [
        f"{f.path}:{f.line}: {f.rule} {f.message}\n    {f.text}"
        for f in findings
    ]
    lines.append(f"{label}: {len(findings)} finding(s)")
    return "\n".join(lines)


def render_json(findings: Sequence[Finding]) -> str:
    """Machine-readable JSON report (stable field order)."""
    return json.dumps(
        {"findings": [asdict(f) for f in findings]}, indent=2
    )
