"""Interprocedural lock-discipline analysis for the concurrent layers.

Two passes over ``service/`` and ``parallel/`` (or any tree handed to them):

**Race detection** (rules C001–C003).  For each class we build a symbol
table of attribute accesses, the lexical lock context of every access, and
the in-class call graph.  A guard set is then *inferred*: an attribute is
considered guarded by lock ``L`` when its concrete (non-``__init__``)
writes happen under ``with self.L`` / ``self.L.write_locked()`` contexts.
Any read or write of a guarded attribute that can be reached without the
lock is flagged:

* ``C001`` — write of a guarded attribute outside its lock.
* ``C002`` — read of a guarded attribute outside its lock (reader-writer
  locks: either side satisfies a read).
* ``C003`` — attribute written while holding only the *shared* (read) side
  of a reader-writer lock — two such writers may race with each other.

Methods named ``*_locked`` / ``*_unlocked`` and ``__init__`` are treated as
"caller holds the lock" (wildcard) contexts, matching the repo convention
(and R007).  Private helpers inherit the intersection of the lock contexts
of their in-class call sites, so e.g. ``_replace_worker`` reached only from
``_run_locked`` is recognized as guarded.

**Lock-order analysis** (rule L001).  Across *all* scanned classes we build
the lock-acquisition graph: one node per ``Class.lock_attr``, one edge
``H -> X`` whenever ``X`` can be acquired (directly or via a resolvable
call chain) while ``H`` is held.  Attribute types are resolved from
``__init__`` assignments (``self._x = ClassName(...)``) and constructor
parameter annotations.  Cycles in the graph — including self-loops, i.e.
re-acquiring a non-reentrant lock — are reported as potential deadlocks.

Both passes reuse the lint engine's :class:`~repro.analysis.lint.Finding`
shape, inline ``# repro: noqa-Cxxx`` waivers, and baseline files
(``race-baseline.json`` / ``locks-baseline.json``).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Sequence

from .lint import Finding, finding_at, iter_sources

__all__ = [
    "RACE_BASELINE_NAME",
    "LOCKS_BASELINE_NAME",
    "LockEdge",
    "analyze_race_source",
    "analyze_race_paths",
    "analyze_lock_order",
    "collect_lock_edges",
    "render_lock_graph",
]

RACE_BASELINE_NAME = "race-baseline.json"
LOCKS_BASELINE_NAME = "locks-baseline.json"

#: Wildcard guard: "the caller is responsible for holding the lock".
_WILDCARD = "*"

#: Exclusive / shared sides of a guard context.
_EXCLUSIVE = "exclusive"
_SHARED = "shared"

#: Container methods that mutate their receiver in place.
_MUTATORS = frozenset(
    {
        "append",
        "appendleft",
        "extend",
        "insert",
        "delete",
        "pop",
        "popleft",
        "popitem",
        "remove",
        "discard",
        "clear",
        "update",
        "add",
        "setdefault",
        "sort",
        "reverse",
    }
)


def _is_lock_name(attr: str) -> bool:
    """Attribute names we treat as locks (``_mutex``, ``_lock``, ...)."""
    lowered = attr.lower()
    return "lock" in lowered or "mutex" in lowered


def _self_attr(node: ast.AST) -> str | None:
    """``self.X`` -> ``"X"``, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _guard_of_with_item(expr: ast.expr) -> tuple[str, str] | None:
    """Recognize a lock acquisition in a ``with`` item.

    Returns ``(lock_attr, mode)`` for ``with self._mutex`` (exclusive),
    ``with self._lock.write_locked()`` (exclusive) and
    ``with self._lock.read_locked()`` (shared); ``None`` otherwise.
    """
    attr = _self_attr(expr)
    if attr is not None and _is_lock_name(attr):
        return (attr, _EXCLUSIVE)
    if isinstance(expr, ast.Call) and isinstance(expr.func, ast.Attribute):
        method = expr.func.attr
        lock = _self_attr(expr.func.value)
        if lock is not None:
            if method in ("write_locked", "wlock", "acquire_write"):
                return (lock, _EXCLUSIVE)
            if method in ("read_locked", "rlock", "acquire_read"):
                return (lock, _SHARED)
    return None


def _wildcard_method(name: str) -> bool:
    """Methods whose body assumes the caller already holds the lock."""
    return (
        name == "__init__"
        or name.endswith("_locked")
        or name.endswith("_unlocked")
    )


@dataclass(frozen=True)
class _Guard:
    lock: str
    mode: str  # _EXCLUSIVE or _SHARED


@dataclass
class _Access:
    attr: str
    lineno: int
    kind: str  # "read" | "write"
    guards: frozenset  # of _Guard
    wildcard: bool
    method: str


@dataclass
class _Acquisition:
    lock: str
    lineno: int
    method: str
    held: tuple  # lock attr names lexically held at the acquisition


@dataclass
class _CallSite:
    #: ("self", method) for in-class calls, (class_name, method) for
    #: resolved external calls, (class_name, "__init__") for constructors.
    target: tuple
    lineno: int
    method: str
    guards: frozenset
    wildcard: bool
    held: tuple  # lock attr names lexically held at the call


@dataclass
class _ClassModel:
    name: str
    path: str
    lock_attrs: set = field(default_factory=set)
    methods: set = field(default_factory=set)
    accesses: list = field(default_factory=list)
    acquisitions: list = field(default_factory=list)
    calls: list = field(default_factory=list)
    #: attr name -> class name (from __init__ assignments / annotations)
    attr_types: dict = field(default_factory=dict)
    #: attr name -> element class name (for Sequence[...] attributes)
    attr_elem_types: dict = field(default_factory=dict)


# ---------------------------------------------------------------------------
# extraction


def _annotation_class(node: ast.expr | None) -> tuple[str | None, bool]:
    """Resolve a parameter annotation to ``(class_name, is_sequence)``.

    Handles ``X``, ``X | None``, ``Optional[X]``, ``Sequence[X]`` and
    ``list[X]`` shapes (recursively); anything else yields ``(None, ...)``.
    """
    if node is None:
        return (None, False)
    if isinstance(node, ast.Name):
        return (node.id, False)
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        try:
            return _annotation_class(ast.parse(node.value, mode="eval").body)
        except SyntaxError:
            return (None, False)
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        for side in (node.left, node.right):
            name, seq = _annotation_class(side)
            if name is not None and name != "None":
                return (name, seq)
        return (None, False)
    if isinstance(node, ast.Subscript):
        outer = None
        if isinstance(node.value, ast.Name):
            outer = node.value.id
        elif isinstance(node.value, ast.Attribute):
            outer = node.value.attr
        inner, _ = _annotation_class(node.slice)
        if outer in ("Sequence", "list", "List", "tuple", "Tuple", "Iterable"):
            return (inner, True)
        if outer == "Optional":
            return (inner, False)
    return (None, False)


class _MethodScanner:
    """Walk one method body collecting accesses/acquisitions/calls."""

    def __init__(self, model: _ClassModel, method: ast.FunctionDef) -> None:
        self.model = model
        self.method = method.name
        self.wildcard = _wildcard_method(method.name)
        self.param_types: dict = {}
        for arg in method.args.args + method.args.kwonlyargs:
            name, seq = _annotation_class(arg.annotation)
            if name is not None:
                self.param_types[arg.arg] = (name, seq)
        #: local var name -> class name (flow-insensitive, last write wins
        #: as we scan in source order — good enough for this codebase)
        self.local_types: dict = {}

    # -- helpers ----------------------------------------------------------

    def _record_access(
        self, attr: str, lineno: int, kind: str, guards: frozenset
    ) -> None:
        if attr in self.model.lock_attrs or _is_lock_name(attr):
            return
        self.model.accesses.append(
            _Access(
                attr=attr,
                lineno=lineno,
                kind=kind,
                guards=guards,
                wildcard=self.wildcard,
                method=self.method,
            )
        )

    def _root_self_attr(self, node: ast.AST) -> str | None:
        """Leftmost ``self.X`` of an attribute/subscript chain."""
        while isinstance(node, (ast.Subscript, ast.Attribute)):
            attr = _self_attr(node)
            if attr is not None:
                return attr
            node = node.value
        return None

    def _infer_value_type(self, value: ast.expr) -> tuple[str | None, bool]:
        """Type of an assigned expression: ``(class_name, is_sequence)``."""
        if isinstance(value, ast.Call):
            func = value.func
            if isinstance(func, ast.Name):
                if func.id in ("list", "tuple", "sorted"):
                    if value.args:
                        inner, _ = self._infer_value_type(value.args[0])
                        return (inner, True)
                    return (None, True)
                return (func.id, False)
            if isinstance(func, ast.Attribute) and isinstance(
                func.value, ast.Name
            ):
                # module-qualified constructor, e.g. threading.Lock()
                return (func.attr, False)
            return (None, False)
        if isinstance(value, ast.Name):
            if value.id in self.param_types:
                return self.param_types[value.id]
            if value.id in self.local_types:
                return self.local_types[value.id]
            return (None, False)
        if isinstance(value, ast.ListComp):
            return self._comp_elt_type(value)
        if isinstance(value, ast.Subscript):
            base = _self_attr(value.value)
            if base is not None and base in self.model.attr_elem_types:
                return (self.model.attr_elem_types[base], False)
            if isinstance(value.value, ast.Name):
                known = self.local_types.get(
                    value.value.id
                ) or self.param_types.get(value.value.id)
                if known and known[1]:
                    return (known[0], False)
            return (None, False)
        if isinstance(value, ast.Attribute):
            attr = _self_attr(value)
            if attr is not None:
                if attr in self.model.attr_types:
                    return (self.model.attr_types[attr], False)
                if attr in self.model.attr_elem_types:
                    return (self.model.attr_elem_types[attr], True)
        return (None, False)

    def _comp_elt_type(self, comp: ast.ListComp) -> tuple[str | None, bool]:
        elt = comp.elt
        if isinstance(elt, ast.Call) and isinstance(elt.func, ast.Name):
            return (elt.func.id, True)
        return (None, True)

    def _resolve_receiver(self, node: ast.expr) -> str | None:
        """Class name of a method-call receiver, if inferable."""
        attr = _self_attr(node)
        if attr is not None:
            return self.model.attr_types.get(attr)
        if isinstance(node, ast.Subscript):
            base = _self_attr(node.value)
            if base is not None:
                return self.model.attr_elem_types.get(base)
            if isinstance(node.value, ast.Name):
                known = self.local_types.get(
                    node.value.id
                ) or self.param_types.get(node.value.id)
                if known and known[1]:
                    return known[0]
            return None
        if isinstance(node, ast.Name):
            known = self.local_types.get(node.id) or self.param_types.get(
                node.id
            )
            if known and not known[1]:
                return known[0]
        return None

    # -- traversal --------------------------------------------------------

    def scan(self, body: Sequence[ast.stmt]) -> None:
        self._scan_block(body, guards=frozenset(), held=())

    def _scan_block(
        self, body: Sequence[ast.stmt], *, guards: frozenset, held: tuple
    ) -> None:
        for stmt in body:
            self._scan_stmt(stmt, guards=guards, held=held)

    def _scan_stmt(
        self, stmt: ast.stmt, *, guards: frozenset, held: tuple
    ) -> None:
        if isinstance(stmt, ast.With):
            inner_guards = set(guards)
            inner_held = list(held)
            for item in stmt.items:
                guard = _guard_of_with_item(item.context_expr)
                if guard is not None:
                    lock, mode = guard
                    self.model.lock_attrs.add(lock)
                    self.model.acquisitions.append(
                        _Acquisition(
                            lock=lock,
                            lineno=item.context_expr.lineno,
                            method=self.method,
                            held=tuple(inner_held),
                        )
                    )
                    inner_guards.add(_Guard(lock=lock, mode=mode))
                    inner_held.append(lock)
                else:
                    self._scan_expr(item.context_expr, guards, held)
                if item.optional_vars is not None:
                    self._scan_expr(item.optional_vars, guards, held)
            self._scan_block(
                stmt.body, guards=frozenset(inner_guards), held=tuple(inner_held)
            )
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            # Nested function (e.g. a worker closure): its body runs later,
            # possibly on another thread — scan with *no* lexical guards.
            self._scan_block(stmt.body, guards=frozenset(), held=())
            return
        if isinstance(stmt, ast.Assign):
            self._scan_expr(stmt.value, guards, held)
            for target in stmt.targets:
                self._scan_store(target, guards, held)
            if len(stmt.targets) == 1 and isinstance(
                stmt.targets[0], (ast.Name, ast.Attribute)
            ):
                self._record_type_binding(stmt.targets[0], stmt.value)
            return
        if isinstance(stmt, ast.AnnAssign):
            if stmt.value is not None:
                self._scan_expr(stmt.value, guards, held)
                self._record_type_binding(stmt.target, stmt.value)
            self._scan_store(stmt.target, guards, held)
            return
        if isinstance(stmt, ast.AugAssign):
            self._scan_expr(stmt.value, guards, held)
            # read-modify-write of the target
            attr = _self_attr(stmt.target)
            if attr is None:
                attr = self._root_self_attr(stmt.target)
            if attr is not None:
                self._record_access(attr, stmt.lineno, "read", guards)
                self._record_access(attr, stmt.lineno, "write", guards)
            else:
                self._scan_expr(stmt.target, guards, held, skip_store=True)
            return
        if isinstance(stmt, ast.Delete):
            for target in stmt.targets:
                self._scan_store(target, guards, held)
            return
        # Generic statement: scan child expressions, recurse into blocks.
        for child_block in ("body", "orelse", "finalbody"):
            block = getattr(stmt, child_block, None)
            if block:
                self._scan_block(block, guards=guards, held=held)
        if isinstance(stmt, ast.Try):
            for handler in stmt.handlers:
                self._scan_block(handler.body, guards=guards, held=held)
        for fld, value in ast.iter_fields(stmt):
            if fld in ("body", "orelse", "finalbody", "handlers"):
                continue
            if isinstance(value, ast.expr):
                self._scan_expr(value, guards, held)
            elif isinstance(value, list):
                for item in value:
                    if isinstance(item, ast.expr):
                        self._scan_expr(item, guards, held)

    def _record_type_binding(self, target: ast.expr, value: ast.expr) -> None:
        name, seq = self._infer_value_type(value)
        if name is None:
            return
        attr = _self_attr(target)
        if attr is not None:
            if seq:
                self.model.attr_elem_types.setdefault(attr, name)
            else:
                self.model.attr_types.setdefault(attr, name)
        elif isinstance(target, ast.Name):
            self.local_types[target.id] = (name, seq)

    def _scan_store(
        self, target: ast.expr, guards: frozenset, held: tuple
    ) -> None:
        if isinstance(target, (ast.Tuple, ast.List)):
            for elt in target.elts:
                self._scan_store(elt, guards, held)
            return
        attr = _self_attr(target)
        if attr is not None:
            self._record_access(attr, target.lineno, "write", guards)
            return
        if isinstance(target, (ast.Subscript, ast.Attribute)):
            root = self._root_self_attr(target)
            if root is not None:
                # self.X[i] = v / self.X.field = v mutate the object bound
                # to X — shared state if X is.
                self._record_access(root, target.lineno, "write", guards)
                # still scan index expressions for reads
                if isinstance(target, ast.Subscript):
                    self._scan_expr(target.slice, guards, held)
                return
            self._scan_expr(target, guards, held, skip_store=True)

    def _scan_expr(
        self,
        expr: ast.expr,
        guards: frozenset,
        held: tuple,
        *,
        skip_store: bool = False,
    ) -> None:
        for node in ast.walk(expr):
            if isinstance(node, ast.Call):
                self._scan_call(node, guards, held)
            elif isinstance(node, ast.Attribute):
                attr = _self_attr(node)
                if attr is None:
                    continue
                if isinstance(node.ctx, ast.Store) and skip_store:
                    continue
                kind = "write" if isinstance(node.ctx, ast.Store) else "read"
                self._record_access(attr, node.lineno, kind, guards)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                pass  # children visited by ast.walk anyway

    def _scan_call(
        self, call: ast.Call, guards: frozenset, held: tuple
    ) -> None:
        func = call.func
        if isinstance(func, ast.Attribute):
            method_name = func.attr
            receiver = func.value
            recv_attr = _self_attr(receiver)
            if recv_attr is not None and method_name in (
                "read_locked",
                "write_locked",
            ):
                return  # handled as a with-item guard
            if recv_attr is None and isinstance(receiver, ast.Name) and receiver.id == "self":
                # self.method(...) — in-class call
                self.model.calls.append(
                    _CallSite(
                        target=("self", method_name),
                        lineno=call.lineno,
                        method=self.method,
                        guards=guards,
                        wildcard=self.wildcard,
                        held=held,
                    )
                )
                return
            if recv_attr is not None and method_name in _MUTATORS:
                # self.X.append(...) mutates the container bound to X.
                self._record_access(recv_attr, call.lineno, "write", guards)
            target_class = self._resolve_receiver(receiver)
            if target_class is not None:
                self.model.calls.append(
                    _CallSite(
                        target=(target_class, method_name),
                        lineno=call.lineno,
                        method=self.method,
                        guards=guards,
                        wildcard=self.wildcard,
                        held=held,
                    )
                )
        elif isinstance(func, ast.Name):
            self.model.calls.append(
                _CallSite(
                    target=(func.id, "__init__"),
                    lineno=call.lineno,
                    method=self.method,
                    guards=guards,
                    wildcard=self.wildcard,
                    held=held,
                )
            )


def _extract_class(node: ast.ClassDef, path: str) -> _ClassModel:
    model = _ClassModel(name=node.name, path=path)
    methods = [
        item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    ]
    model.methods = {m.name for m in methods}
    # Two passes: attribute types must be known before receivers resolve.
    for method in methods:
        scanner = _MethodScanner(model, method)
        for stmt in method.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Assign) and len(sub.targets) == 1:
                    scanner._record_type_binding(sub.targets[0], sub.value)
    for method in methods:
        # Skip classmethods/staticmethods: no `self` receiver.
        decorators = {
            d.id
            for d in method.decorator_list
            if isinstance(d, ast.Name)
        }
        if {"classmethod", "staticmethod"} & decorators:
            continue
        scanner = _MethodScanner(model, method)
        scanner.scan(method.body)
    return model


def extract_models(source: str, path: str) -> list[_ClassModel]:
    """Parse a module and build one :class:`_ClassModel` per class."""
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    models = []
    for node in ast.walk(module):
        if isinstance(node, ast.ClassDef):
            models.append(_extract_class(node, path))
    return models


# ---------------------------------------------------------------------------
# race detection


def _inherited_guards(model: _ClassModel) -> dict:
    """Per-method guard sets inherited from in-class call sites.

    ``__init__`` and ``*_locked``/``*_unlocked`` methods get the wildcard.
    A private helper inherits the *intersection* of the effective guard
    sets at its call sites; public methods are external entry points and
    inherit nothing.  Computed as a decreasing fixpoint.
    """
    TOP = None  # lattice top: "never called" (identity for intersection)
    inherited: dict = {}
    fixed: dict = {}
    for name in model.methods:
        if _wildcard_method(name):
            fixed[name] = (frozenset(), True)  # (guards, wildcard)
        elif not name.startswith("_") or name.startswith("__"):
            fixed[name] = (frozenset(), False)
        else:
            inherited[name] = TOP
    sites: dict = {}
    for call in model.calls:
        kind, target = call.target
        if kind != "self" or target not in inherited:
            continue
        sites.setdefault(target, []).append(call)

    def effective(call: _CallSite) -> tuple:
        caller = call.method
        if caller in fixed:
            base_guards, base_wild = fixed[caller]
        else:
            base = inherited.get(caller, TOP)
            if base is TOP:
                return TOP
            base_guards, base_wild = base
        return (call.guards | base_guards, call.wildcard or base_wild)

    changed = True
    while changed:
        changed = False
        for name in inherited:
            candidates = [effective(c) for c in sites.get(name, [])]
            candidates = [c for c in candidates if c is not TOP]
            if not candidates:
                new = TOP if sites.get(name) else (frozenset(), False)
            else:
                guards = frozenset.intersection(
                    *[frozenset(c[0]) for c in candidates]
                )
                wildcard = all(c[1] for c in candidates)
                new = (guards, wildcard)
            if new != inherited[name]:
                inherited[name] = new
                changed = True
    result = dict(fixed)
    for name, value in inherited.items():
        result[name] = (frozenset(), False) if value is TOP else value
    return result


def _effective_accesses(model: _ClassModel) -> list:
    """Accesses with inherited guards folded in: ``(access, guards, wild)``."""
    inherited = _inherited_guards(model)
    out = []
    for access in model.accesses:
        extra_guards, extra_wild = inherited.get(
            access.method, (frozenset(), False)
        )
        out.append(
            (
                access,
                access.guards | extra_guards,
                access.wildcard or extra_wild,
            )
        )
    return out


def _infer_guarded_attrs(model: _ClassModel, accesses: list) -> dict:
    """attr -> set of lock names inferred to guard it.

    A lock guards an attribute when at least one concrete write holds its
    exclusive side and at least half of all non-wildcard-only evidence
    agrees.  If *every* write is wildcard-guarded (only reached from
    ``__init__`` / ``*_locked`` helpers) and the class has exactly one
    lock, that lock is assumed — this is what catches a public method
    bypassing ``_run_locked``-style helpers.
    """
    by_attr: dict = {}
    for access, guards, wildcard in accesses:
        if access.kind != "write":
            continue
        by_attr.setdefault(access.attr, []).append((access, guards, wildcard))
    guarded: dict = {}
    for attr, writes in by_attr.items():
        non_init_writes = [
            w for w in writes if w[0].method != "__init__"
        ]
        if not non_init_writes:
            continue  # effectively immutable after construction
        total = len(non_init_writes)
        # Candidate guards: every lock held exclusively at some write,
        # plus — when wildcard-guarded writes exist (helpers reached only
        # from __init__ / *_locked contexts) and the class has exactly one
        # lock — that lock.  Wildcard writes count as evidence *for* any
        # candidate, so a single buggy unguarded write cannot mask itself
        # by poisoning the inference.
        candidates: set = set()
        has_wildcard = False
        for access, guards, wildcard in non_init_writes:
            if wildcard:
                has_wildcard = True
            for guard in guards:
                if guard.mode == _EXCLUSIVE:
                    candidates.add(guard.lock)
        if has_wildcard and len(model.lock_attrs) == 1:
            candidates |= model.lock_attrs
        locks = set()
        for lock in candidates:
            covered = sum(
                1
                for access, guards, wildcard in non_init_writes
                if wildcard
                or any(
                    g.lock == lock and g.mode == _EXCLUSIVE for g in guards
                )
            )
            if covered * 2 >= total:
                locks.add(lock)
        if locks:
            guarded[attr] = locks
    return guarded


def analyze_race_source(
    source: str, path: str, *, lines: Sequence[str] | None = None
) -> list[Finding]:
    """Run the race pass over one module's source."""
    if lines is None:
        lines = tuple(source.splitlines())
    findings: list[Finding] = []
    for model in extract_models(source, path):
        accesses = _effective_accesses(model)
        guarded = _infer_guarded_attrs(model, accesses)
        for access, guards, wildcard in accesses:
            # C003: write under only the shared side of an RW lock.
            if (
                access.kind == "write"
                and not wildcard
                and guards
                and all(g.mode == _SHARED for g in guards)
            ):
                finding = finding_at(
                    "C003",
                    path,
                    access.lineno,
                    f"`{model.name}.{access.attr}` written while holding "
                    "only the shared (read) side of "
                    f"`{'/'.join(sorted({g.lock for g in guards}))}` — "
                    "concurrent readers may race on this write",
                    lines,
                )
                if finding is not None:
                    findings.append(finding)
                continue
            locks = guarded.get(access.attr)
            if not locks or wildcard:
                continue
            if access.kind == "write":
                ok = any(
                    g.lock in locks and g.mode == _EXCLUSIVE for g in guards
                )
                rule, what = "C001", "written"
            else:
                ok = any(g.lock in locks for g in guards)
                rule, what = "C002", "read"
            if ok:
                continue
            finding = finding_at(
                rule,
                path,
                access.lineno,
                f"`{model.name}.{access.attr}` {what} in "
                f"`{access.method}` without holding "
                f"`{'/'.join(sorted(locks))}` (inferred guard)",
                lines,
            )
            if finding is not None:
                findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


def analyze_race_paths(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> list[Finding]:
    """Run the race pass over files/directories."""
    findings: list[Finding] = []
    for display, source in iter_sources(paths, root=root):
        findings.extend(analyze_race_source(source, display))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# lock-order analysis


@dataclass(frozen=True)
class LockEdge:
    """``held`` acquired before ``acquired`` at ``path:line`` in ``site``."""

    held: str  # "Class.lock_attr"
    acquired: str
    path: str
    line: int
    site: str  # "Class.method"


def _method_lock_summaries(models: dict) -> dict:
    """``(class, method) -> frozenset`` of locks acquired transitively."""
    summaries: dict = {}
    for model in models.values():
        for method in model.methods:
            summaries[(model.name, method)] = set()
        for acq in model.acquisitions:
            summaries.setdefault((model.name, acq.method), set()).add(
                f"{model.name}.{acq.lock}"
            )
    changed = True
    while changed:
        changed = False
        for model in models.values():
            for call in model.calls:
                kind, target = call.target
                if kind == "self":
                    callee = (model.name, target)
                elif kind in models:
                    callee = (kind, target)
                else:
                    continue
                if callee not in summaries:
                    continue
                key = (model.name, call.method)
                current = summaries.setdefault(key, set())
                merged = summaries[callee] - current
                if merged:
                    current.update(merged)
                    changed = True
    return {key: frozenset(value) for key, value in summaries.items()}


def collect_lock_edges(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> list[LockEdge]:
    """Build the cross-class lock-acquisition graph edges."""
    models: dict = {}
    for display, source in iter_sources(paths, root=root):
        for model in extract_models(source, display):
            models.setdefault(model.name, model)
    summaries = _method_lock_summaries(models)
    edges: set = set()
    for model in models.values():
        for acq in model.acquisitions:
            node = f"{model.name}.{acq.lock}"
            for held in acq.held:
                edges.add(
                    LockEdge(
                        held=f"{model.name}.{held}",
                        acquired=node,
                        path=model.path,
                        line=acq.lineno,
                        site=f"{model.name}.{acq.method}",
                    )
                )
        for call in model.calls:
            if not call.held:
                continue
            kind, target = call.target
            if kind == "self":
                callee = (model.name, target)
            elif kind in models:
                callee = (kind, target)
            else:
                continue
            for acquired in summaries.get(callee, frozenset()):
                for held in call.held:
                    edges.add(
                        LockEdge(
                            held=f"{model.name}.{held}",
                            acquired=acquired,
                            path=model.path,
                            line=call.lineno,
                            site=f"{model.name}.{call.method}",
                        )
                    )
    return sorted(
        edges, key=lambda e: (e.held, e.acquired, e.path, e.line)
    )


def _find_cycles(edges: Iterable[LockEdge]) -> list:
    """Elementary cycles in the lock graph (self-loops included).

    Returns a list of ``(nodes, edge)`` with ``nodes`` the cycle's node
    sequence and ``edge`` a representative :class:`LockEdge` to anchor the
    finding.  Uses SCC decomposition; within an SCC we report one shortest
    cycle through its smallest node — enough to make the gate actionable
    without enumerating every rotation.
    """
    graph: dict = {}
    edge_for: dict = {}
    for edge in edges:
        graph.setdefault(edge.held, set()).add(edge.acquired)
        graph.setdefault(edge.acquired, set())
        edge_for.setdefault((edge.held, edge.acquired), edge)

    # Iterative Tarjan SCC.
    index_counter = [0]
    index: dict = {}
    lowlink: dict = {}
    on_stack: dict = {}
    stack: list = []
    sccs: list = []
    for start in sorted(graph):
        if start in index:
            continue
        work = [(start, iter(sorted(graph[start])))]
        index[start] = lowlink[start] = index_counter[0]
        index_counter[0] += 1
        stack.append(start)
        on_stack[start] = True
        while work:
            node, successors = work[-1]
            advanced = False
            for succ in successors:
                if succ not in index:
                    index[succ] = lowlink[succ] = index_counter[0]
                    index_counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(sorted(graph[succ]))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))

    cycles = []
    for component in sccs:
        if len(component) == 1:
            node = component[0]
            if node in graph.get(node, set()):
                cycles.append(([node, node], edge_for[(node, node)]))
            continue
        # BFS a shortest cycle through the smallest node of the SCC.
        origin = component[0]
        members = set(component)
        parents: dict = {origin: None}
        queue = [origin]
        found = None
        while queue and found is None:
            node = queue.pop(0)
            for succ in sorted(graph[node]):
                if succ == origin:
                    found = node
                    break
                if succ in members and succ not in parents:
                    parents[succ] = node
                    queue.append(succ)
        if found is None:  # pragma: no cover - SCC guarantees a cycle
            continue
        path = [found]
        while parents[path[-1]] is not None:
            path.append(parents[path[-1]])
        path.reverse()
        nodes = path + [origin] if path[0] == origin else [origin] + path + [origin]
        cycles.append((nodes, edge_for[(nodes[0], nodes[1])]))
    return cycles


def analyze_lock_order(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> tuple[list[Finding], list[LockEdge]]:
    """Run the lock-order pass; returns ``(findings, graph_edges)``."""
    edges = collect_lock_edges(paths, root=root)
    sources = dict(iter_sources(paths, root=root))
    findings: list[Finding] = []
    for nodes, edge in _find_cycles(edges):
        chain = " -> ".join(nodes)
        lines = tuple(sources.get(edge.path, "").splitlines())
        finding = finding_at(
            "L001",
            edge.path,
            edge.line,
            f"potential deadlock: lock-order cycle {chain} "
            f"(first edge acquired in `{edge.site}`)",
            lines,
        )
        if finding is not None:
            findings.append(finding)
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings, edges


def render_lock_graph(edges: Sequence[LockEdge], *, fmt: str = "text") -> str:
    """Render the acquisition graph as text or Graphviz dot."""
    if fmt == "dot":
        lines = ["digraph locks {"]
        for edge in edges:
            lines.append(
                f'  "{edge.held}" -> "{edge.acquired}" '
                f'[label="{edge.site} {edge.path}:{edge.line}"];'
            )
        lines.append("}")
        return "\n".join(lines)
    if not edges:
        return "lock graph: no nested acquisitions"
    lines = [
        f"{edge.held} -> {edge.acquired}  "
        f"[{edge.site} at {edge.path}:{edge.line}]"
        for edge in edges
    ]
    lines.append(f"lock graph: {len(edges)} edge(s)")
    return "\n".join(lines)
