"""``python -m repro.analysis``: the repo lint / analysis CLI.

Subcommands::

    lint [PATHS ...]        run rules R001-R009 (default target: src/)
        --baseline [FILE]   subtract a baseline (default: lint-baseline.json)
        --no-baseline       report everything, baseline ignored
        --write-baseline    rewrite the baseline from the current findings
        --prune-baseline    drop stale baseline entries and exit
        --format text|json  reporter selection
        --list-rules        print the rule catalogue and exit

    race [PATHS ...]        lock-discipline race detection (C001-C003;
                            default target: src/repro/service src/repro/parallel)
    locks [PATHS ...]       lock-order deadlock analysis (L001)
        --graph             print the full acquisition graph
        --graph-format text|dot
    contracts [PATHS ...]   dtype/shape contract checking (D001-D003;
                            default target: src/)

``race``/``locks``/``contracts`` share lint's baseline flags (defaults:
race-baseline.json / locks-baseline.json / contracts-baseline.json).

Exit status is 0 when no non-baselined findings remain, 1 otherwise — which
is what the CI gate keys on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .concurrency import (
    LOCKS_BASELINE_NAME,
    RACE_BASELINE_NAME,
    analyze_lock_order,
    analyze_race_paths,
    render_lock_graph,
)
from .contracts import CONTRACTS_BASELINE_NAME, analyze_contracts_paths
from .lint import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    lint_paths,
    load_baseline,
    prune_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .rules import RULES

_RACE_DEFAULT_PATHS = ["src/repro/service", "src/repro/parallel"]


def _check_paths(paths: Sequence[str]) -> int | None:
    missing = [path for path in paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    return None


def _report(args: argparse.Namespace, findings, baseline_path: str) -> int:
    """Shared baseline/reporter plumbing for every findings-producing pass."""
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    if getattr(args, "prune_baseline", False):
        kept, dropped = prune_baseline(findings, baseline_path)
        print(
            f"pruned {baseline_path}: kept {kept} entr{'y' if kept == 1 else 'ies'}, "
            f"dropped {dropped} stale"
        )
        return 0
    if not args.no_baseline:
        findings = apply_baseline(findings, load_baseline(baseline_path))
    report = (
        render_json(findings)
        if args.format == "json"
        else render_text(findings, label=args.command)
    )
    print(report)
    return 1 if findings else 0


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in RULES:
            scope = "hot modules" if rule.hot_only else "all files"
            print(f"{rule.id}  [{scope}]  {rule.summary}")
        return 0
    status = _check_paths(args.paths)
    if status is not None:
        return status
    findings = lint_paths(args.paths)
    return _report(args, findings, args.baseline or DEFAULT_BASELINE_NAME)


def _run_race(args: argparse.Namespace) -> int:
    status = _check_paths(args.paths)
    if status is not None:
        return status
    findings = analyze_race_paths(args.paths)
    return _report(args, findings, args.baseline or RACE_BASELINE_NAME)


def _run_locks(args: argparse.Namespace) -> int:
    status = _check_paths(args.paths)
    if status is not None:
        return status
    findings, edges = analyze_lock_order(args.paths)
    if args.graph:
        print(render_lock_graph(edges, fmt=args.graph_format))
        if args.graph_format == "dot":
            return 0
    return _report(args, findings, args.baseline or LOCKS_BASELINE_NAME)


def _run_contracts(args: argparse.Namespace) -> int:
    status = _check_paths(args.paths)
    if status is not None:
        return status
    findings = analyze_contracts_paths(args.paths)
    return _report(args, findings, args.baseline or CONTRACTS_BASELINE_NAME)


def _add_common_flags(
    parser: argparse.ArgumentParser,
    *,
    default_paths: Sequence[str],
    default_baseline: str,
) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=list(default_paths),
        help="files/directories to scan",
    )
    parser.add_argument(
        "--baseline",
        nargs="?",
        const=default_baseline,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {default_baseline})",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    parser.add_argument(
        "--prune-baseline",
        action="store_true",
        help="drop baseline entries no longer triggered and exit",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    lint_parser = subparsers.add_parser(
        "lint", help="run the repo-specific static lint pass"
    )
    _add_common_flags(
        lint_parser,
        default_paths=["src"],
        default_baseline=DEFAULT_BASELINE_NAME,
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_parser.set_defaults(handler=_run_lint)

    race_parser = subparsers.add_parser(
        "race",
        help="lock-discipline race detection over the concurrent layers",
    )
    _add_common_flags(
        race_parser,
        default_paths=_RACE_DEFAULT_PATHS,
        default_baseline=RACE_BASELINE_NAME,
    )
    race_parser.set_defaults(handler=_run_race)

    locks_parser = subparsers.add_parser(
        "locks", help="lock-order (deadlock) analysis"
    )
    _add_common_flags(
        locks_parser,
        default_paths=_RACE_DEFAULT_PATHS,
        default_baseline=LOCKS_BASELINE_NAME,
    )
    locks_parser.add_argument(
        "--graph",
        action="store_true",
        help="print the lock-acquisition graph before the findings",
    )
    locks_parser.add_argument(
        "--graph-format",
        choices=("text", "dot"),
        default="text",
        help="graph rendering (dot implies graph-only output)",
    )
    locks_parser.set_defaults(handler=_run_locks)

    contracts_parser = subparsers.add_parser(
        "contracts", help="numpy dtype/shape contract checking"
    )
    _add_common_flags(
        contracts_parser,
        default_paths=["src"],
        default_baseline=CONTRACTS_BASELINE_NAME,
    )
    contracts_parser.set_defaults(handler=_run_contracts)

    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
