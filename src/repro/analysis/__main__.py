"""``python -m repro.analysis``: the repo lint / sanitizer CLI.

Subcommands::

    lint [PATHS ...]        run rules R001-R008 (default target: src/)
        --baseline [FILE]   subtract a baseline (default: lint-baseline.json)
        --no-baseline       report everything, baseline ignored
        --write-baseline    rewrite the baseline from the current findings
        --format text|json  reporter selection
        --list-rules        print the rule catalogue and exit

Exit status is 0 when no non-baselined findings remain, 1 otherwise — which
is what the CI gate keys on.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Sequence

from .lint import (
    DEFAULT_BASELINE_NAME,
    apply_baseline,
    lint_paths,
    load_baseline,
    render_json,
    render_text,
    write_baseline,
)
from .rules import RULES


def _run_lint(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule in RULES:
            scope = "hot modules" if rule.hot_only else "all files"
            print(f"{rule.id}  [{scope}]  {rule.summary}")
        return 0
    missing = [path for path in args.paths if not Path(path).exists()]
    if missing:
        print(
            f"error: no such file or directory: {', '.join(missing)}",
            file=sys.stderr,
        )
        return 2
    findings = lint_paths(args.paths)
    baseline_path = args.baseline or DEFAULT_BASELINE_NAME
    if args.write_baseline:
        write_baseline(findings, baseline_path)
        print(f"wrote {len(findings)} finding(s) to {baseline_path}")
        return 0
    if not args.no_baseline:
        findings = apply_baseline(findings, load_baseline(baseline_path))
    report = (
        render_json(findings) if args.format == "json" else render_text(findings)
    )
    print(report)
    return 1 if findings else 0


def main(argv: Sequence[str] | None = None) -> int:
    """Entry point; returns the process exit status."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.analysis", description=__doc__
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    lint_parser = subparsers.add_parser(
        "lint", help="run the repo-specific static lint pass"
    )
    lint_parser.add_argument(
        "paths", nargs="*", default=["src"], help="files/directories to scan"
    )
    lint_parser.add_argument(
        "--baseline",
        nargs="?",
        const=DEFAULT_BASELINE_NAME,
        default=None,
        metavar="FILE",
        help=f"baseline file (default: {DEFAULT_BASELINE_NAME})",
    )
    lint_parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline file",
    )
    lint_parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit",
    )
    lint_parser.add_argument(
        "--format", choices=("text", "json"), default="text"
    )
    lint_parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )
    lint_parser.set_defaults(handler=_run_lint)
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":
    sys.exit(main())
