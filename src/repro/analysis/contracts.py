"""dtype/shape contract checking — static pass and runtime manifest guard.

The repo's array planes have fixed dtypes (the contract table below): PQ
codes are packed ``uint8``, identifier planes (``oids``/``ids``/cluster
assignments/take indices) are ``int64``, and the numeric planes (vectors,
attributes, centers, codebooks, ADC distance tables) are ``float64`` until
the kernel-backend refactor narrows them.  Silent drift — an ``astype``
that widens codes to float, an ``np.empty`` without a dtype that defaults
to float64 for an id plane, a ``concatenate`` mixing planes — costs memory
bandwidth at best and corrupts shm block layouts at worst.

Static rules (``python -m repro.analysis contracts``):

* ``D001`` — an array constructor / ``astype`` pins a dtype that
  *conflicts* with the contract implied by the variable or attribute name
  (e.g. ``codes = np.zeros(..., dtype=np.float64)``).
* ``D002`` — a dtype-*defaulting* constructor (``np.empty``/``zeros``/
  ``ones``/``full``/``arange``) feeds a contract-named target without an
  explicit dtype; numpy silently defaults to float64.  Scoped to
  ``service/`` and ``parallel/`` where arrays cross process boundaries.
* ``D003`` — ``np.concatenate``/``vstack``/``hstack`` whose parts resolve
  to *different* contract dtypes.

The same table also backs :func:`manifest_contract_errors`, the runtime
validator the sanitizer (``REPRO_SANITIZE=1``) runs when a
``SharedIndexView`` attaches a publisher's manifest: block dtypes, shapes,
and embedded version tags must match, and every mapped shm block must be
large enough for its advertised shape.

Findings reuse the lint engine's baseline (``contracts-baseline.json``)
and ``# repro: noqa-Dxxx`` machinery.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Mapping, Sequence

import numpy as np

from .lint import Finding, finding_at, iter_sources

__all__ = [
    "CONTRACTS_BASELINE_NAME",
    "NAME_CONTRACTS",
    "MANIFEST_BLOCK_DTYPES",
    "contract_for_name",
    "analyze_contracts_source",
    "analyze_contracts_paths",
    "manifest_contract_errors",
]

CONTRACTS_BASELINE_NAME = "contracts-baseline.json"

#: name token (last ``_``-separated component) -> required dtype name.
#: Single point of update when ROADMAP item 1 narrows vectors to float32.
NAME_CONTRACTS: Mapping[str, str] = {
    # packed PQ codes
    "codes": "uint8",
    # identifier / index planes
    "oids": "int64",
    "oid": "int64",
    "ids": "int64",
    "clusters": "int64",
    "takes": "int64",
    "rows": "int64",
    "positions": "int64",
    # numeric planes
    "attrs": "float64",
    "vectors": "float64",
    "vector": "float64",
    "queries": "float64",
    "query": "float64",
    "centers": "float64",
    "codebooks": "float64",
    "distances": "float64",
}

#: shm manifest block key -> required dtype (mirrors SharedIndexStore).
MANIFEST_BLOCK_DTYPES: Mapping[str, str] = {
    "attrs": "float64",
    "oids": "int64",
    "clusters": "int64",
    "codes": "uint8",
    "codebooks": "float64",
    "centers": "float64",
}

#: numpy constructors that default to float64 when dtype is omitted.
_DEFAULTING_CTORS = frozenset({"empty", "zeros", "ones", "full", "arange"})

#: all numpy array constructors we inspect for explicit dtype conflicts.
_ARRAY_CTORS = _DEFAULTING_CTORS | frozenset(
    {
        "array",
        "asarray",
        "ascontiguousarray",
        "asfortranarray",
        "frombuffer",
        "fromiter",
        "empty_like",
        "zeros_like",
        "ones_like",
        "full_like",
    }
)

_CONCATENATORS = frozenset({"concatenate", "vstack", "hstack", "stack"})

#: paths D002 (missing-dtype) applies to — where arrays cross processes.
_STRICT_PATH_MARKERS = ("service/", "parallel/", "_fixture")


def contract_for_name(name: str | None) -> str | None:
    """Required dtype for a variable/attribute name, or ``None``.

    Matches on the full name and on its last ``_``-separated token, so
    ``shard_oids`` and ``_codes`` resolve while ``decode`` does not.
    """
    if not name:
        return None
    name = name.lstrip("_").lower()
    if name in NAME_CONTRACTS:
        return NAME_CONTRACTS[name]
    token = name.rsplit("_", 1)[-1]
    return NAME_CONTRACTS.get(token)


def _dtype_name(node: ast.expr) -> str | None:
    """Resolve a ``dtype=`` expression to a canonical dtype name."""
    if isinstance(node, ast.Attribute):
        # np.uint8, numpy.float64, ...
        candidate = node.attr
    elif isinstance(node, ast.Name):
        candidate = node.id
    elif isinstance(node, ast.Constant) and isinstance(node.value, str):
        candidate = node.value
    else:
        return None
    try:
        return np.dtype(candidate).name
    except TypeError:
        return None


def _leaf_name(node: ast.expr) -> str | None:
    """Best-effort name of an expression for contract lookup.

    ``self._codes`` -> ``_codes``; ``codes[mask]`` -> ``codes``;
    ``p.ids`` -> ``ids``; comprehension elements recurse on ``elt``.
    """
    if isinstance(node, (ast.ListComp, ast.GeneratorExp)):
        return _leaf_name(node.elt)
    while isinstance(node, ast.Subscript):
        node = node.value
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Call):
        # e.g. codes.copy() / shard.take_codes(...)
        if isinstance(node.func, ast.Attribute):
            inner = _leaf_name(node.func.value)
            if node.func.attr in ("copy", "ravel", "reshape", "view"):
                return inner
            return node.func.attr
    return None


def _is_numpy_call(call: ast.Call, names: frozenset) -> str | None:
    """``np.zeros(...)`` / ``numpy.zeros(...)`` -> ``"zeros"``."""
    func = call.func
    if (
        isinstance(func, ast.Attribute)
        and isinstance(func.value, ast.Name)
        and func.value.id in ("np", "numpy")
        and func.attr in names
    ):
        return func.attr
    return None


def _dtype_keyword(call: ast.Call) -> ast.expr | None:
    for keyword in call.keywords:
        if keyword.arg == "dtype":
            return keyword.value
    return None


class _ContractVisitor(ast.NodeVisitor):
    def __init__(self, path: str, lines: Sequence[str]) -> None:
        self.path = path
        self.lines = lines
        self.strict = any(m in path for m in _STRICT_PATH_MARKERS)
        self.findings: list[Finding] = []
        #: call node id -> subject name from an enclosing assignment
        self._subjects: dict = {}

    def _emit(self, rule: str, lineno: int, message: str) -> None:
        finding = finding_at(rule, self.path, lineno, message, self.lines)
        if finding is not None:
            self.findings.append(finding)

    # -- assignments give constructor calls their subject name ----------

    def _note_subject(self, target: ast.expr, value: ast.expr) -> None:
        name = _leaf_name(target)
        if name and isinstance(value, ast.Call):
            self._subjects[id(value)] = name

    def visit_Assign(self, node: ast.Assign) -> None:
        if len(node.targets) == 1:
            self._note_subject(node.targets[0], node.value)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        if node.value is not None:
            self._note_subject(node.target, node.value)
        self.generic_visit(node)

    # -- the checks ------------------------------------------------------

    def _subject_of(self, call: ast.Call) -> str | None:
        subject = self._subjects.get(id(call))
        if subject is not None:
            return subject
        if call.args:
            return _leaf_name(call.args[0])
        return None

    def visit_Call(self, node: ast.Call) -> None:
        ctor = _is_numpy_call(node, _ARRAY_CTORS)
        if ctor is not None:
            self._check_ctor(node, ctor)
        elif _is_numpy_call(node, _CONCATENATORS):
            self._check_concatenate(node)
        elif (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
        ):
            self._check_astype(node)
        self.generic_visit(node)

    def _check_ctor(self, node: ast.Call, ctor: str) -> None:
        subject = self._subject_of(node)
        contract = contract_for_name(subject)
        if contract is None:
            return
        dtype_expr = _dtype_keyword(node)
        if dtype_expr is None:
            if ctor in _DEFAULTING_CTORS and self.strict:
                self._emit(
                    "D002",
                    node.lineno,
                    f"`np.{ctor}` for `{subject}` omits dtype= (numpy "
                    f"defaults to float64; contract requires {contract})",
                )
            return
        dtype = _dtype_name(dtype_expr)
        if dtype is not None and dtype != contract:
            self._emit(
                "D001",
                node.lineno,
                f"`np.{ctor}` pins dtype={dtype} for `{subject}` but the "
                f"contract requires {contract}",
            )

    def _check_astype(self, node: ast.Call) -> None:
        receiver = _leaf_name(node.func.value)
        subject = receiver or self._subjects.get(id(node))
        contract = contract_for_name(subject)
        # Also honour the *assignment target*: `codes = raw.astype(...)`
        # must produce uint8 even when `raw` carries no contract.
        target_contract = contract_for_name(self._subjects.get(id(node)))
        dtype_expr = node.args[0] if node.args else _dtype_keyword(node)
        if dtype_expr is None:
            return
        dtype = _dtype_name(dtype_expr)
        if dtype is None:
            return
        for name, required in (
            (subject, contract),
            (self._subjects.get(id(node)), target_contract),
        ):
            if required is not None and dtype != required:
                self._emit(
                    "D001",
                    node.lineno,
                    f"`{name}.astype`/assignment casts to {dtype} but the "
                    f"contract for `{name}` requires {required}",
                )
                return

    def _check_concatenate(self, node: ast.Call) -> None:
        if not node.args:
            return
        parts = node.args[0]
        if isinstance(parts, (ast.List, ast.Tuple)):
            elements = parts.elts
        elif isinstance(parts, (ast.ListComp, ast.GeneratorExp)):
            elements = [parts.elt]
        else:
            return
        contracts = {}
        for element in elements:
            name = _leaf_name(element)
            contract = contract_for_name(name)
            if contract is not None:
                contracts.setdefault(contract, name)
        if len(contracts) > 1:
            detail = ", ".join(
                f"`{name}`={dtype}" for dtype, name in sorted(contracts.items())
            )
            self._emit(
                "D003",
                node.lineno,
                f"concatenate mixes contract dtypes: {detail}",
            )


def analyze_contracts_source(source: str, path: str) -> list[Finding]:
    """Run the contract pass over one module's source."""
    try:
        module = ast.parse(source, filename=path)
    except SyntaxError:
        return []
    visitor = _ContractVisitor(path, tuple(source.splitlines()))
    visitor.visit(module)
    visitor.findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return visitor.findings


def analyze_contracts_paths(
    paths: Sequence[str | Path], *, root: str | Path | None = None
) -> list[Finding]:
    """Run the contract pass over files/directories."""
    findings: list[Finding] = []
    for display, source in iter_sources(paths, root=root):
        findings.extend(analyze_contracts_source(source, display))
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    return findings


# ---------------------------------------------------------------------------
# runtime manifest validation (sanitizer hook)


def manifest_contract_errors(
    manifest: Mapping, block_sizes: Mapping[str, int] | None = None
) -> list[str]:
    """Validate a shm manifest against the block contract table.

    Checks each block's dtype against :data:`MANIFEST_BLOCK_DTYPES`, shape
    sanity (no negative dims, row counts consistent with ``count``, codes
    width equal to ``num_subspaces``, codebook/center shapes matching the
    quantizer params), the ``-v<version>-`` tag embedded in every block's
    shm name, and — when ``block_sizes`` maps block key to mapped byte
    length — that each block is large enough for its advertised shape.

    Returns a list of human-readable problems (empty = valid).  Used by
    :meth:`repro.parallel.shm.SharedIndexView.attach` under
    ``REPRO_SANITIZE=1``.
    """
    errors: list[str] = []
    blocks = manifest.get("blocks")
    if not isinstance(blocks, Mapping):
        return ["manifest has no blocks mapping"]
    version = manifest.get("version")
    version_tag = f"-v{version}-" if version is not None else None
    count = manifest.get("count")
    shapes: dict = {}
    for key, spec in blocks.items():
        dtype_str = spec.get("dtype")
        try:
            dtype = np.dtype(dtype_str)
        except TypeError:
            errors.append(f"block `{key}`: undecodable dtype {dtype_str!r}")
            continue
        required = MANIFEST_BLOCK_DTYPES.get(key)
        if required is not None and dtype.name != required:
            errors.append(
                f"block `{key}`: dtype {dtype.name} violates the "
                f"{required} contract"
            )
        shape = tuple(spec.get("shape", ()))
        shapes[key] = shape
        if any(
            not isinstance(dim, int) or dim < 0 for dim in shape
        ):
            errors.append(f"block `{key}`: invalid shape {shape}")
            continue
        name = spec.get("shm", "")
        if version_tag is not None and version_tag not in str(name):
            errors.append(
                f"block `{key}`: shm name {name!r} does not carry the "
                f"manifest version tag {version_tag!r} (stale publisher?)"
            )
        if block_sizes is not None and key in block_sizes:
            need = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
            if block_sizes[key] < need:
                errors.append(
                    f"block `{key}`: mapped {block_sizes[key]} bytes but "
                    f"shape {shape} x {dtype.name} needs {need}"
                )
    if isinstance(count, int):
        for key in ("attrs", "oids", "clusters", "codes"):
            shape = shapes.get(key)
            if shape and shape[0] != count:
                errors.append(
                    f"block `{key}`: {shape[0]} rows but manifest count "
                    f"is {count}"
                )
    num_subspaces = manifest.get("num_subspaces")
    codes = shapes.get("codes")
    if codes is not None and isinstance(num_subspaces, int):
        if len(codes) != 2 or codes[1] != num_subspaces:
            errors.append(
                f"block `codes`: shape {codes} inconsistent with "
                f"num_subspaces={num_subspaces}"
            )
    codebooks = shapes.get("codebooks")
    num_codewords = manifest.get("num_codewords")
    if codebooks is not None and isinstance(num_subspaces, int):
        if len(codebooks) != 3 or codebooks[0] != num_subspaces:
            errors.append(
                f"block `codebooks`: shape {codebooks} inconsistent with "
                f"num_subspaces={num_subspaces}"
            )
        elif isinstance(num_codewords, int) and codebooks[1] != num_codewords:
            errors.append(
                f"block `codebooks`: shape {codebooks} inconsistent with "
                f"num_codewords={num_codewords}"
            )
    centers = shapes.get("centers")
    num_clusters = manifest.get("num_clusters")
    dim = manifest.get("dim")
    if centers is not None:
        if isinstance(num_clusters, int) and centers and centers[0] != num_clusters:
            errors.append(
                f"block `centers`: shape {centers} inconsistent with "
                f"num_clusters={num_clusters}"
            )
        elif (
            isinstance(dim, int) and len(centers) == 2 and centers[1] != dim
        ):
            errors.append(
                f"block `centers`: shape {centers} inconsistent with "
                f"dim={dim}"
            )
    return errors
