"""Runtime index sanitizer: auto-audit ``check_invariants`` under mutation.

Dynamic structures rot silently under mixed insert/delete workloads — a
drifted subtree aggregate or a missed rebuild trigger returns *plausible but
wrong* query results long before anything crashes.  This module turns every
index's ``check_invariants`` into an always-on audit:

* :func:`sanitized` wraps one index so every mutation (or every ``N``-th)
  re-verifies balance bounds, aggregate sums against leaf recomputation,
  rebuild-trigger accounting, and bucket-boundary monotonicity.
* :func:`install` patches the mutators of *every* registered index class in
  place; ``REPRO_SANITIZE=1`` in the environment applies it at import time
  (``REPRO_SANITIZE_EVERY=N`` tunes the audit period, default
  :data:`DEFAULT_AUDIT_EVERY`), so the whole test suite runs sanitized
  without a single call-site change.

Nested mutators (``RangePQ.insert`` → ``RangeTree.insert`` → rebuild) audit
only at the outermost frame — inner structures are mid-flight and allowed to
be temporarily inconsistent.
"""

from __future__ import annotations

import functools
import importlib
import os
import threading
from typing import Callable, Sequence

__all__ = [
    "DEFAULT_AUDIT_EVERY",
    "SanitizedIndex",
    "sanitized",
    "install",
    "uninstall",
    "sanitize_enabled",
    "REGISTRY",
]

#: Default number of mutations between audits when installed globally.
DEFAULT_AUDIT_EVERY = 64

#: Mutator method names intercepted by :class:`SanitizedIndex`.
MUTATOR_NAMES = frozenset(
    {
        "insert",
        "insert_many",
        "insert_batch",
        "upsert",
        "delete",
        "delete_many",
        "add",
        "remove",
        "flush",
    }
)

#: ``(module, class, mutator methods)`` patched by :func:`install`.
REGISTRY: tuple[tuple[str, str, tuple[str, ...]], ...] = (
    ("repro.core.rangepq", "RangePQ",
     ("insert", "insert_many", "delete", "delete_many")),
    ("repro.core.rangepq_plus", "RangePQPlus",
     ("insert", "insert_many", "delete", "delete_many")),
    ("repro.core.multiattr", "MultiAttrRangePQ", ("insert", "delete")),
    ("repro.db.table", "VectorTable",
     ("insert", "insert_batch", "upsert", "delete")),
    ("repro.ivf.ivfpq", "IVFPQIndex", ("add", "remove")),
    ("repro.ivf.flat", "IVFFlatIndex", ("add", "remove")),
    ("repro.ivf.residual", "ResidualIVFPQIndex", ("add",)),
    ("repro.tree.wbt", "RangeTree", ("insert", "delete")),
    ("repro.btree.bptree", "BPlusTree", ("insert", "delete")),
    ("repro.btree.bptree", "BPlusAttributeDirectory", ("add", "remove")),
    ("repro.baselines.base", "AttributeDirectory", ("add", "remove")),
    ("repro.baselines.bruteforce", "BruteForceRangeIndex",
     ("insert", "delete")),
    ("repro.baselines.milvus_like", "MilvusLikeIndex",
     ("insert", "delete", "flush")),
    ("repro.baselines.rii", "RIIIndex", ("insert", "delete")),
    ("repro.baselines.vbase", "VBaseIndex", ("insert", "delete")),
    ("repro.graph.hnsw", "HNSWIndex", ("add",)),
    ("repro.graph.serf", "SegmentGraphIndex", ("insert",)),
    ("repro.graph.range_adapter", "HNSWRangeIndex", ("insert", "delete")),
    ("repro.service.engine", "IndexService",
     ("insert", "insert_many", "delete", "delete_many")),
    ("repro.service.engine", "GlobalLockService", ("insert", "delete")),
    ("repro.service.router", "RangeShardedService", ("insert", "delete")),
)

_depth = threading.local()
_installed: list[tuple[type, str, Callable]] = []


def sanitize_enabled() -> bool:
    """Whether ``REPRO_SANITIZE`` requests global sanitation."""
    return os.environ.get("REPRO_SANITIZE", "").lower() in (
        "1",
        "true",
        "yes",
        "on",
    )


def _audit_every() -> int:
    try:
        return max(1, int(os.environ["REPRO_SANITIZE_EVERY"]))
    except (KeyError, ValueError):
        return DEFAULT_AUDIT_EVERY


def _enter() -> int:
    depth = getattr(_depth, "value", 0)
    _depth.value = depth + 1
    return depth


def _exit(depth: int) -> None:
    _depth.value = depth


def _wrap_mutator(method: Callable, every: int) -> Callable:
    """Wrap one mutator so the outermost successful call audits every Nth."""

    @functools.wraps(method)
    def audited(self, *args, **kwargs):
        depth = _enter()
        try:
            result = method(self, *args, **kwargs)
        finally:
            _exit(depth)
        if depth == 0:
            count = getattr(self, "_sanitize_mutations", 0) + 1
            self._sanitize_mutations = count
            if count % every == 0:
                self.check_invariants()
        return result

    audited.__repro_sanitized__ = True  # type: ignore[attr-defined]
    return audited


def install(every: int | None = None) -> None:
    """Patch every registered index class to self-audit under mutation.

    Idempotent; :func:`uninstall` restores the original methods.

    Args:
        every: Mutations between audits (default: ``REPRO_SANITIZE_EVERY``
            or :data:`DEFAULT_AUDIT_EVERY`).
    """
    if _installed:
        return
    period = every if every is not None else _audit_every()
    for module_name, class_name, methods in REGISTRY:
        module = importlib.import_module(module_name)
        cls = getattr(module, class_name)
        for name in methods:
            original = cls.__dict__.get(name)
            if original is None or getattr(
                original, "__repro_sanitized__", False
            ):
                continue
            setattr(cls, name, _wrap_mutator(original, period))
            _installed.append((cls, name, original))


def uninstall() -> None:
    """Undo :func:`install`, restoring the unwrapped mutators."""
    while _installed:
        cls, name, original = _installed.pop()
        setattr(cls, name, original)


class SanitizedIndex:
    """Transparent proxy auditing one index's invariants under mutation.

    Every attribute access is forwarded to the wrapped index; calls to
    mutator methods (:data:`MUTATOR_NAMES`) additionally run
    ``check_invariants`` after every ``every``-th successful mutation.

    Args:
        index: Any object exposing ``check_invariants``.
        every: Mutations between audits (default 1: audit every mutation).
    """

    def __init__(self, index, every: int = 1) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if not callable(getattr(index, "check_invariants", None)):
            raise TypeError(
                f"{type(index).__name__} has no check_invariants method"
            )
        object.__setattr__(self, "_index", index)
        object.__setattr__(self, "_every", every)
        object.__setattr__(self, "_mutations", 0)

    @property
    def wrapped(self):
        """The underlying index."""
        return self._index

    @property
    def mutation_count(self) -> int:
        """Mutations observed through this proxy."""
        return self._mutations

    def __getattr__(self, name: str):
        value = getattr(self._index, name)
        if name in MUTATOR_NAMES and callable(value):

            @functools.wraps(value)
            def audited(*args, **kwargs):
                result = value(*args, **kwargs)
                count = self._mutations + 1
                object.__setattr__(self, "_mutations", count)
                if count % self._every == 0:
                    self._index.check_invariants()
                return result

            return audited
        return value

    def __len__(self) -> int:
        return len(self._index)

    def __contains__(self, oid) -> bool:
        return oid in self._index

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SanitizedIndex({self._index!r}, every={self._every})"


def sanitized(index, *, every: int = 1) -> SanitizedIndex:
    """Wrap ``index`` in a :class:`SanitizedIndex` auditing proxy."""
    return SanitizedIndex(index, every=every)
