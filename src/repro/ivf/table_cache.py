"""Query-keyed LRU cache for per-query derived arrays (ADC tables, center
distances).

Serving traffic is rarely uniform: popular query vectors repeat (Zipf-shaped
request streams, duplicate queries inside one batch), and every repeat pays
the ``O(d·Z)`` ADC-table build and the ``O(K·d)`` center-distance pass again.
:class:`LRUCache` memoizes those arrays keyed by the raw query bytes, so an
exact repeat skips the kernel entirely.  :class:`IVFPQIndex` owns two
instances (one per derived array) and clears them whenever the quantizers
are retrained, since the cached arrays are only valid for one codebook set.

Cached values are stored as read-only ndarrays shared between hits; callers
must not mutate them.  A capacity of 0 disables caching (every ``get`` is a
miss and ``put`` is a no-op) while keeping the stats counters meaningful.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Hashable

__all__ = ["LRUCache", "CacheStats"]


@dataclass(frozen=True)
class CacheStats:
    """Point-in-time snapshot of one cache's counters.

    Attributes:
        hits / misses: Lookup outcomes since construction.
        evictions: Entries dropped because capacity was exceeded.
        invalidations: Times the whole cache was cleared (e.g. on retrain).
        size: Entries currently stored.
        capacity: Maximum entries (0 = caching disabled).
    """

    hits: int
    misses: int
    evictions: int
    invalidations: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the cache (0.0 when none ran)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Bounded mapping with least-recently-used eviction and hit counters.

    The method surface is deliberately ``get``/``put``/``clear``: the cache
    is a memo, not an index — entries carry no invariants of their own, and
    dropping any entry at any time is always correct.

    Args:
        capacity: Maximum number of entries kept; 0 disables the cache.
    """

    __slots__ = ("_capacity", "_entries", "hits", "misses", "evictions",
                 "invalidations")

    def __init__(self, capacity: int) -> None:
        if capacity < 0:
            raise ValueError(f"capacity must be >= 0, got {capacity}")
        self._capacity = capacity
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    @property
    def capacity(self) -> int:
        return self._capacity

    def get(self, key: Hashable):
        """Return the cached value for ``key`` (marking it recent), else None."""
        value = self._entries.get(key)
        if value is None:
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under ``key``, evicting the LRU entry if full."""
        if self._capacity == 0:
            return
        self._entries[key] = value
        self._entries.move_to_end(key)
        while len(self._entries) > self._capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        """Drop every entry (counted as one invalidation); stats persist."""
        self._entries.clear()
        self.invalidations += 1

    def stats(self) -> CacheStats:
        """Snapshot of the counters; see :class:`CacheStats`."""
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            evictions=self.evictions,
            invalidations=self.invalidations,
            size=len(self._entries),
            capacity=self._capacity,
        )
