"""Dynamic IVF + PQ index (the "PQ-based index" of Sec. 2.2).

:class:`IVFPQIndex` is the shared substrate every method in this repository
builds on — RangePQ/RangePQ+ attach their attribute trees to it, and the
Milvus-like / RII / VBase baselines run their query strategies over it.

Design notes:

* PQ codes are computed on **raw vectors** (not residuals), as in RII, so a
  single ``(M, Z)`` distance table per query serves objects from *any* coarse
  cluster.  RangePQ's ``SearchByCCenters`` depends on this property.
* Object IDs are caller-assigned non-negative integers.  Rows are stored in
  growable arrays with a free-list so deletes leave no holes to scan.
* Each inverted list tracks member positions in a dict, giving O(1)
  swap-with-last removal.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

import numpy as np

from .. import kernels
from ..obs import counter
from ..quantization import ProductQuantizer
from .coarse import CoarseQuantizer, default_num_clusters
from .table_cache import CacheStats, LRUCache

__all__ = [
    "IVFPQIndex",
    "IVFSearchResult",
    "DEFAULT_NPROBE_FRACTION",
    "DEFAULT_CACHE_CAPACITY",
]

# Process-wide cache traffic (sums over every index in the process; the
# per-index exact counters live in each cache's CacheStats).
_TABLE_HITS = counter("cache.table.hits")
_TABLE_MISSES = counter("cache.table.misses")
_CENTER_HITS = counter("cache.center.hits")
_CENTER_MISSES = counter("cache.center.misses")

#: Fraction of the K coarse clusters probed by default in plain ANN search.
DEFAULT_NPROBE_FRACTION = 0.1

#: Default entry count for the per-index ADC-table / center-distance caches.
#: An entry costs ``M·Z·8`` B (table) or ``K·8`` B (centers); 256 tables at
#: the usual M=16, Z=256 is ~8 MB — small next to the codes it amortizes.
DEFAULT_CACHE_CAPACITY = 256


@dataclass(frozen=True)
class IVFSearchResult:
    """Result of an IVF search.

    Attributes:
        ids: Object IDs of the (up to) ``k`` nearest results, ascending by
            approximate distance.
        distances: Matching approximate squared distances.
        num_candidates: Number of encoded vectors whose ADC distance was
            evaluated.
        num_probed: Number of coarse clusters visited.
    """

    ids: np.ndarray
    distances: np.ndarray
    num_candidates: int
    num_probed: int

    def __len__(self) -> int:
        return len(self.ids)


class _InvertedList:
    """One coarse cluster's member set with O(1) add/remove.

    Keeps a cached numpy view of the member IDs that is invalidated on
    mutation, so repeated searches over a static index pay the array
    conversion only once.
    """

    __slots__ = ("_members", "_pos", "_cache")

    def __init__(self) -> None:
        self._members: list[int] = []
        self._pos: dict[int, int] = {}
        self._cache: np.ndarray | None = None

    def __len__(self) -> int:
        return len(self._members)

    def __contains__(self, oid: int) -> bool:
        return oid in self._pos

    def add(self, oid: int) -> None:
        if oid in self._pos:
            raise KeyError(f"object {oid} already in inverted list")
        self._pos[oid] = len(self._members)
        self._members.append(oid)
        self._cache = None

    def remove(self, oid: int) -> None:
        pos = self._pos.pop(oid)
        last = self._members.pop()
        if last != oid:
            self._members[pos] = last
            self._pos[last] = pos
        self._cache = None

    def as_array(self) -> np.ndarray:
        if self._cache is None:
            self._cache = np.asarray(self._members, dtype=np.int64)
        return self._cache


class IVFPQIndex:
    """Dynamic inverted-file index with product-quantized codes.

    Args:
        num_subspaces: ``M``, PQ subspace count; must divide the vector dim.
        num_clusters: ``K``; defaults to ``⌈√n⌉`` of the training set.
        num_codewords: ``Z``, PQ codebook size per subspace.
        seed: Seed shared by the coarse and PQ k-means runs.
        cache_capacity: Entries kept in each of the per-query LRU caches
            (ADC tables and center distances); 0 disables caching.  Cached
            arrays depend only on the trained quantizers, so they survive
            add/remove and are invalidated by :meth:`train`.
    """

    def __init__(
        self,
        num_subspaces: int,
        *,
        num_clusters: int | None = None,
        num_codewords: int = 256,
        seed: int | None = None,
        cache_capacity: int = DEFAULT_CACHE_CAPACITY,
    ) -> None:
        self._requested_clusters = num_clusters
        self.pq = ProductQuantizer(num_subspaces, num_codewords, seed=seed)
        self.coarse: CoarseQuantizer | None = None
        self.seed = seed
        self._cache_capacity = cache_capacity
        self._table_cache = LRUCache(cache_capacity)
        self._center_cache = LRUCache(cache_capacity)

        self._codes = np.empty((0, num_subspaces), dtype=np.uint8)
        # Deliberately int32 in core (small cluster ids, half the memory);
        # widened to the int64 contract at the shm publish boundary.
        self._clusters = np.empty(0, dtype=np.int32)  # repro: noqa-D001
        self._row_of: dict[int, int] = {}
        self._oid_of_row = np.empty(0, dtype=np.int64)
        self._free_rows: list[int] = []
        self._lists: list[_InvertedList] = []

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has been called."""
        return self.coarse is not None and self.pq.is_trained

    @property
    def num_clusters(self) -> int:
        """``K``, the coarse cluster count."""
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        return self.coarse.num_clusters

    def __len__(self) -> int:
        """Number of stored objects."""
        return len(self._row_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    def ids(self) -> list[int]:
        """All stored object IDs (unordered)."""
        return list(self._row_of)

    # ------------------------------------------------------------------
    # Training and storage
    # ------------------------------------------------------------------
    def train(
        self,
        training_vectors: np.ndarray,
        *,
        max_iter: int = 20,
        max_training_points: int | None = 20000,
    ) -> "IVFPQIndex":
        """Fit the coarse quantizer and the product quantizer.

        Training does not add any vectors; call :meth:`add` afterwards.

        Args:
            training_vectors: Array of shape ``(n, d)``.
            max_iter: Lloyd iterations for both k-means stages.
            max_training_points: Subsample cap passed to both stages.

        Returns:
            ``self``, for chaining.
        """
        training_vectors = np.asarray(training_vectors, dtype=np.float64)
        k = self._requested_clusters or default_num_clusters(len(training_vectors))
        self.coarse = CoarseQuantizer(k, seed=self.seed).fit(
            training_vectors,
            max_iter=max_iter,
            max_training_points=max_training_points,
        )
        self.pq.fit(
            training_vectors,
            max_iter=max_iter,
            max_training_points=max_training_points,
        )
        self._lists = [_InvertedList() for _ in range(k)]
        self._codes = np.empty((0, self.pq.num_subspaces), dtype=self.pq.code_dtype)
        # Cached tables/distances were computed against the old quantizers.
        self.clear_caches()
        return self

    def clone_empty(self) -> "IVFPQIndex":
        """A fresh, empty index sharing this one's trained quantizers.

        The coarse centers and PQ codebooks are immutable after training, so
        sharing them is safe; storage (codes, inverted lists) is independent.
        Used by the experiment harness to give every method an identically
        trained substrate without re-running k-means.
        """
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        clone = IVFPQIndex(
            self.pq.num_subspaces,
            num_clusters=self._requested_clusters,
            num_codewords=self.pq.num_codewords,
            seed=self.seed,
            cache_capacity=self._cache_capacity,
        )
        clone.pq = self.pq
        clone.coarse = self.coarse
        clone._lists = [_InvertedList() for _ in range(self.num_clusters)]
        clone._codes = np.empty((0, self.pq.num_subspaces), dtype=self.pq.code_dtype)
        return clone

    def _grow(self, extra: int) -> None:
        """Ensure capacity for ``extra`` more rows (amortized doubling)."""
        needed = len(self._oid_of_row) - len(self._free_rows) + extra
        capacity = len(self._oid_of_row)
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity, 16)
        grown_codes = np.empty(
            (new_capacity, self._codes.shape[1]), dtype=self._codes.dtype
        )
        grown_codes[:capacity] = self._codes
        self._codes = grown_codes
        self._clusters = np.concatenate(
            [self._clusters, np.full(new_capacity - capacity, -1, dtype=np.int32)]
        )
        self._oid_of_row = np.concatenate(
            [self._oid_of_row, np.full(new_capacity - capacity, -1, dtype=np.int64)]
        )
        self._free_rows.extend(range(new_capacity - 1, capacity - 1, -1))

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> np.ndarray:
        """Insert vectors under the given object IDs.

        Args:
            ids: Distinct non-negative integers not already present.
            vectors: Array of shape ``(len(ids), d)``.

        Returns:
            The coarse cluster ID assigned to each inserted object.
        """
        if self.coarse is None:
            raise RuntimeError("index is not trained; call train() first")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        ids = list(ids)
        if len(ids) != vectors.shape[0]:
            raise ValueError(
                f"{len(ids)} ids but {vectors.shape[0]} vectors supplied"
            )
        for oid in ids:
            if oid in self._row_of:
                raise KeyError(f"object {oid} already present")
        clusters = self.coarse.assign(vectors)
        codes = self.pq.encode(vectors)
        self._grow(len(ids))
        if not self._codes.flags.writeable:
            # Mapped read-only (load_index mmap_mode="r"); a reused row
            # slot needs in-place writes, so adopt a private copy now.
            self._codes = np.array(self._codes, dtype=self._codes.dtype)
        for oid, cluster, code in zip(ids, clusters, codes):
            row = self._free_rows.pop()
            self._row_of[oid] = row
            self._oid_of_row[row] = oid
            self._clusters[row] = cluster
            self._codes[row] = code
            self._lists[int(cluster)].add(oid)
        return clusters.astype(np.int32)  # repro: noqa-D001 — in-core plane is int32 by design

    def remove(self, ids: Iterable[int]) -> None:
        """Delete the given object IDs.

        Raises:
            KeyError: If any ID is absent.
        """
        for oid in ids:
            row = self._row_of.pop(oid)
            cluster = int(self._clusters[row])
            self._lists[cluster].remove(oid)
            self._clusters[row] = -1
            self._oid_of_row[row] = -1
            self._free_rows.append(row)

    # ------------------------------------------------------------------
    # Accessors used by the attribute-tree layers
    # ------------------------------------------------------------------
    def cluster_of(self, oid: int) -> int:
        """Coarse cluster ID of a stored object."""
        return int(self._clusters[self._row_of[oid]])

    def cluster_members(self, cluster_id: int) -> np.ndarray:
        """Object IDs currently assigned to ``cluster_id``."""
        return self._lists[cluster_id].as_array()

    def cluster_sizes(self) -> np.ndarray:
        """Array of shape ``(K,)`` with the size of each inverted list."""
        return np.asarray([len(lst) for lst in self._lists], dtype=np.int64)

    @staticmethod
    def _query_key(query: np.ndarray) -> tuple[np.ndarray, bytes]:
        """Canonical (array, cache-key) form of one query vector."""
        query = np.ascontiguousarray(query, dtype=np.float64)
        if query.ndim != 1:
            raise ValueError(f"expected a 1-D query, got shape {query.shape}")
        return query, query.tobytes()

    def distance_table(self, query: np.ndarray) -> np.ndarray:
        """Per-query ADC table ``A`` of shape ``(M, Z)`` (cost ``O(d·Z)``).

        Memoized in an LRU cache keyed by the query bytes: an exact repeat
        of a query returns the stored (read-only) table without rebuilding
        it.  The cache is cleared by :meth:`train`.
        """
        query, key = self._query_key(query)
        table = self._table_cache.get(key)
        if table is None:
            _TABLE_MISSES.inc()
            table = self.pq.distance_table(query)
            table.setflags(write=False)
            self._table_cache.put(key, table)
        else:
            _TABLE_HITS.inc()
        return table

    def distance_tables(self, queries: np.ndarray) -> list[np.ndarray]:
        """ADC tables for a whole query matrix, cache-deduplicated.

        Unique uncached rows are computed in one vectorized pass
        (:meth:`ProductQuantizer.distance_tables`, bitwise identical per row
        to the single-query kernel); cached and duplicate rows share one
        array object.  Cache stats count one lookup per *unique* query.

        Args:
            queries: Array of shape ``(q, d)``.

        Returns:
            List of ``q`` read-only ``(M, Z)`` tables, aligned with the rows.
        """
        queries = np.atleast_2d(np.ascontiguousarray(queries, dtype=np.float64))
        num = queries.shape[0]
        tables: list[np.ndarray | None] = [None] * num
        seen: dict[bytes, int] = {}
        pending: dict[bytes, list[int]] = {}
        for i in range(num):
            key = queries[i].tobytes()
            first = seen.get(key)
            if first is not None:  # in-batch duplicate: share, no new lookup
                if tables[first] is not None:
                    tables[i] = tables[first]
                else:
                    pending[key].append(i)
                continue
            seen[key] = i
            table = self._table_cache.get(key)
            if table is not None:
                _TABLE_HITS.inc()
                tables[i] = table
            else:
                pending[key] = [i]
        if pending:
            _TABLE_MISSES.inc(len(pending))
            first_positions = [positions[0] for positions in pending.values()]
            fresh = self.pq.distance_tables(queries[first_positions])
            for j, (key, positions) in enumerate(pending.items()):
                # Copy each row out so a cached table does not pin the whole
                # (u, M, Z) batch block in memory.
                table = fresh[j].copy()
                table.setflags(write=False)
                self._table_cache.put(key, table)
                for i in positions:
                    tables[i] = table
        return tables

    def adc_for_ids(self, table: np.ndarray, ids: Sequence[int]) -> np.ndarray:
        """Approximate distances for specific object IDs.

        Args:
            table: A table from :meth:`distance_table`.
            ids: Object IDs (all must be present).

        Returns:
            Array of shape ``(len(ids),)``.

        Raises:
            KeyError: Naming the absent oid(s), if any ID is not stored.
        """
        if len(ids) == 0:
            return np.empty(0, dtype=np.float64)
        try:
            rows = kernels.rows_for_ids(self._row_of, ids)
        except KeyError:
            missing = [int(oid) for oid in ids if int(oid) not in self._row_of]
            shown = ", ".join(str(oid) for oid in missing[:10])
            if len(missing) > 10:
                shown += f", ... (+{len(missing) - 10} more)"
            raise KeyError(
                f"object id(s) not present in index: {shown}"
            ) from None
        return kernels.adc_for_rows(table, self._codes, rows)

    def center_distances(self, query: np.ndarray) -> np.ndarray:
        """Squared distances from ``query`` to all ``K`` coarse centers.

        Memoized like :meth:`distance_table` (read-only result, cleared by
        :meth:`train`).
        """
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        query, key = self._query_key(query)
        dist = self._center_cache.get(key)
        if dist is None:
            _CENTER_MISSES.inc()
            dist = self.coarse.center_distances(query)
            dist.setflags(write=False)
            self._center_cache.put(key, dist)
        else:
            _CENTER_HITS.inc()
        return dist

    def center_distances_batch(self, queries: np.ndarray) -> list[np.ndarray]:
        """Center distances for a whole query matrix, cache-deduplicated.

        Each unique row goes through the *single-query* kernel
        (:meth:`CoarseQuantizer.center_distances`) rather than one big
        ``(q, K)`` GEMM: BLAS matmul results are shape-dependent in the last
        bits, and the batch path must stay bitwise identical to sequential
        queries.  The kernel is ``O(K·d)`` per unique query — cheap next to
        the ADC table — and repeats are served from the LRU cache.

        Args:
            queries: Array of shape ``(q, d)``.

        Returns:
            List of ``q`` read-only ``(K,)`` distance arrays.
        """
        queries = np.atleast_2d(np.ascontiguousarray(queries, dtype=np.float64))
        num = queries.shape[0]
        dists: list[np.ndarray | None] = [None] * num
        seen: dict[bytes, int] = {}
        for i in range(num):
            key = queries[i].tobytes()
            first = seen.get(key)
            if first is not None:
                dists[i] = dists[first]
                continue
            seen[key] = i
            dists[i] = self.center_distances(queries[i])
        return dists

    def probe_order(
        self, query: np.ndarray, *, limit: int | None = None
    ) -> np.ndarray:
        """Coarse cluster IDs sorted ascending by distance to ``query``.

        Args:
            query: Array of shape ``(d,)``.
            limit: When given, return only the first ``limit`` cluster IDs
                of the stable order — bit-identical to slicing the full
                result, but computed in ``O(K + limit log limit)`` instead
                of a full ``O(K log K)`` sort over all centers.
        """
        return kernels.stable_order(self.center_distances(query), limit=limit)

    # ------------------------------------------------------------------
    # Per-query cache management
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Invalidate the ADC-table and center-distance caches.

        Called automatically by :meth:`train`; callers only need it for
        measurement hygiene (e.g. benchmarking cold-cache behaviour).
        """
        self._table_cache.clear()
        self._center_cache.clear()

    @property
    def table_cache(self) -> "LRUCache":
        """The ADC-table cache (exposed for stats and tests)."""
        return self._table_cache

    @property
    def center_cache(self) -> "LRUCache":
        """The center-distance cache (exposed for stats and tests)."""
        return self._center_cache

    def cache_stats(self) -> dict[str, CacheStats]:
        """Counter snapshots for both per-query caches."""
        return {
            "table": self._table_cache.stats(),
            "center": self._center_cache.stats(),
        }

    # ------------------------------------------------------------------
    # Plain (unfiltered / mask-filtered) ANN search
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        allowed_mask: np.ndarray | None = None,
    ) -> IVFSearchResult:
        """Standard IVF-ADC top-``k`` search.

        Args:
            query: Array of shape ``(d,)``.
            k: Number of results requested.
            nprobe: Coarse clusters to visit; defaults to
                ``max(1, K * DEFAULT_NPROBE_FRACTION)``.
            allowed_mask: Optional boolean array indexed by object ID; when
                given, only IDs with a True entry are considered (this is the
                bitmap filter used by the Milvus-like baseline).

        Returns:
            An :class:`IVFSearchResult`.
        """
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        if nprobe is None:
            nprobe = max(1, int(self.num_clusters * DEFAULT_NPROBE_FRACTION))
        probed = self.coarse.nearest_centers(query, nprobe)
        chunks = []
        for cluster in probed:
            members = self._lists[int(cluster)].as_array()
            if members.size == 0:
                continue
            if allowed_mask is not None:
                members = members[allowed_mask[members]]
                if members.size == 0:
                    continue
            chunks.append(members)
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return IVFSearchResult(empty, empty.astype(np.float64), 0, len(probed))
        candidates = np.concatenate(chunks)
        table = self.distance_table(query)
        distances = self.adc_for_ids(table, candidates)
        top = _top_k(candidates, distances, k)
        return IVFSearchResult(top[0], top[1], len(candidates), len(probed))

    # ------------------------------------------------------------------
    # Iterator-style access (used by the VBase baseline)
    # ------------------------------------------------------------------
    def iter_candidates(
        self, query: np.ndarray
    ) -> Iterator[tuple[int, float]]:
        """Yield ``(oid, approx_distance)`` in cluster-probe order.

        Clusters are visited nearest-first; within a cluster, members are
        yielded ascending by approximate distance.  This is the ``Next``
        interface of the iterator model VBase builds on.
        """
        table = self.distance_table(query)
        for cluster in self.probe_order(query):
            members = self._lists[int(cluster)].as_array()
            if members.size == 0:
                continue
            distances = self.adc_for_ids(table, members)
            order = kernels.stable_order(distances)
            for idx in order:
                yield int(members[idx]), float(distances[idx])

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify row-map bijectivity, free-list hygiene, and list membership."""
        capacity = len(self._oid_of_row)
        assert self._codes.shape[0] == capacity, "codes/rows capacity mismatch"
        assert len(self._clusters) == capacity, "clusters/rows capacity mismatch"
        assert len(self._row_of) + len(self._free_rows) == capacity, (
            f"{len(self._row_of)} live + {len(self._free_rows)} free rows "
            f"!= capacity {capacity}"
        )
        free = set(self._free_rows)
        assert len(free) == len(self._free_rows), "duplicate free rows"
        for row in free:
            assert self._oid_of_row[row] == -1, f"free row {row} keeps an oid"
            assert self._clusters[row] == -1, f"free row {row} keeps a cluster"
        for oid, row in self._row_of.items():
            assert row not in free, f"live object {oid} on a free row"
            assert self._oid_of_row[row] == oid, f"row map broken for {oid}"
            cluster = int(self._clusters[row])
            assert 0 <= cluster < len(self._lists), f"bad cluster for {oid}"
            assert oid in self._lists[cluster], (
                f"object {oid} missing from inverted list {cluster}"
            )
        members_total = 0
        for cluster_id, inverted in enumerate(self._lists):
            assert len(inverted._pos) == len(inverted._members), (
                f"inverted list {cluster_id} pos/member size mismatch"
            )
            for oid, pos in inverted._pos.items():
                assert inverted._members[pos] == oid, (
                    f"inverted list {cluster_id} position map broken"
                )
            members_total += len(inverted)
        assert members_total == len(self._row_of), (
            "inverted lists do not partition the stored objects"
        )

    # ------------------------------------------------------------------
    # Memory accounting (C-equivalent bytes; see eval/memory.py)
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Bytes a C implementation of this index would occupy.

        Counts PQ codes (1–2 B per subspace per object), one 4 B cluster ID
        per object, 4 B per inverted-list entry, and the float32 codebooks
        and coarse centers.
        """
        n = len(self)
        per_object = self.pq.code_bytes_per_vector() + 4 + 4
        static = self.pq.codebook_bytes()
        if self.coarse is not None:
            static += self.coarse.center_bytes()
        return n * per_object + static


def _top_k(
    ids: np.ndarray, distances: np.ndarray, k: int
) -> tuple[np.ndarray, np.ndarray]:
    """Select the ``k`` smallest distances, ascending, with matching IDs."""
    return kernels.top_k(ids, distances, k)
