"""Inverted-file (IVF) substrate: coarse quantizer and the dynamic IVFPQ index."""

from .coarse import CoarseQuantizer, default_num_clusters
from .flat import IVFFlatIndex
from .ivfpq import (
    DEFAULT_CACHE_CAPACITY,
    DEFAULT_NPROBE_FRACTION,
    IVFPQIndex,
    IVFSearchResult,
)
from .residual import ResidualIVFPQIndex
from .table_cache import CacheStats, LRUCache

__all__ = [
    "CoarseQuantizer",
    "default_num_clusters",
    "IVFPQIndex",
    "IVFFlatIndex",
    "IVFSearchResult",
    "ResidualIVFPQIndex",
    "DEFAULT_NPROBE_FRACTION",
    "DEFAULT_CACHE_CAPACITY",
    "CacheStats",
    "LRUCache",
]
