"""Residual IVFADC: the classic IVF+PQ variant that encodes residuals.

The canonical IVFADC of Jégou et al. PQ-encodes ``x − c(x)`` — the residual
against the assigned coarse center — which concentrates the quantizer's
resolution around each cell and typically improves recall.  The price is
that the ADC table depends on the *cluster*: for a probed cluster ``i`` the
query side of the asymmetric distance is ``q − c_i``, so one ``(M, Z)``
table must be built **per probed cluster** instead of once per query.

That per-cluster coupling is exactly why RangePQ's substrate
(:class:`repro.ivf.IVFPQIndex`) encodes raw vectors instead: its
``SearchByCCenters`` pulls objects from arbitrary, range-dependent cluster
subsets and needs one table to serve them all (DESIGN.md §4.1).  This class
exists to (a) complete the substrate family and (b) quantify what that
design decision costs/buys (``benchmarks/bench_ext_codecs.py``).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from ..quantization import ProductQuantizer, adc_distances
from .coarse import CoarseQuantizer, default_num_clusters
from .ivfpq import IVFSearchResult, _top_k

__all__ = ["ResidualIVFPQIndex"]


class ResidualIVFPQIndex:
    """IVFADC with residual encoding (static-friendly, per-cluster tables).

    Args:
        num_subspaces: PQ ``M``.
        num_clusters: Coarse ``K``; defaults to ``⌈√n⌉`` of the training set.
        num_codewords: PQ ``Z``.
        seed: Seed for both k-means stages.
    """

    def __init__(
        self,
        num_subspaces: int,
        *,
        num_clusters: int | None = None,
        num_codewords: int = 256,
        seed: int | None = None,
    ) -> None:
        self._requested_clusters = num_clusters
        self.pq = ProductQuantizer(num_subspaces, num_codewords, seed=seed)
        self.coarse: CoarseQuantizer | None = None
        self.seed = seed
        #: cluster id -> (list of oids, uint8 code matrix rows in sync)
        self._members: list[list[int]] = []
        self._codes: list[list[np.ndarray]] = []

    @property
    def is_trained(self) -> bool:
        return self.coarse is not None and self.pq.is_trained

    @property
    def num_clusters(self) -> int:
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        return self.coarse.num_clusters

    def __len__(self) -> int:
        return sum(len(members) for members in self._members)

    # ------------------------------------------------------------------
    # Training / storage
    # ------------------------------------------------------------------
    def train(
        self,
        training_vectors: np.ndarray,
        *,
        max_iter: int = 20,
        max_training_points: int | None = 20000,
    ) -> "ResidualIVFPQIndex":
        """Fit coarse centers, then PQ on the training residuals."""
        training_vectors = np.asarray(training_vectors, dtype=np.float64)
        k = self._requested_clusters or default_num_clusters(len(training_vectors))
        self.coarse = CoarseQuantizer(k, seed=self.seed).fit(
            training_vectors,
            max_iter=max_iter,
            max_training_points=max_training_points,
        )
        labels = self.coarse.assign(training_vectors)
        residuals = training_vectors - self.coarse.centers[labels]
        self.pq.fit(
            residuals, max_iter=max_iter, max_training_points=max_training_points
        )
        self._members = [[] for _ in range(k)]
        self._codes = [[] for _ in range(k)]
        return self

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> np.ndarray:
        """Insert vectors; codes are computed on per-cluster residuals."""
        if self.coarse is None:
            raise RuntimeError("index is not trained; call train() first")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        ids = list(ids)
        if len(ids) != vectors.shape[0]:
            raise ValueError(f"{len(ids)} ids but {vectors.shape[0]} vectors")
        labels = self.coarse.assign(vectors)
        residuals = vectors - self.coarse.centers[labels]
        codes = self.pq.encode(residuals)
        for oid, label, code in zip(ids, labels, codes):
            self._members[int(label)].append(oid)
            self._codes[int(label)].append(code)
        return labels.astype(np.int32)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self, query: np.ndarray, k: int, *, nprobe: int | None = None
    ) -> IVFSearchResult:
        """IVFADC top-``k``: one residual ADC table per probed cluster."""
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if nprobe is None:
            nprobe = max(1, self.num_clusters // 10)
        probed = self.coarse.nearest_centers(query, nprobe)
        id_chunks: list[np.ndarray] = []
        dist_chunks: list[np.ndarray] = []
        candidates = 0
        for cluster in probed:
            members = self._members[int(cluster)]
            if not members:
                continue
            # The query-side residual against this cluster's center.
            table = self.pq.distance_table(
                query - self.coarse.centers[int(cluster)]
            )
            codes = np.stack(self._codes[int(cluster)])
            distances = adc_distances(table, codes)
            id_chunks.append(np.asarray(members, dtype=np.int64))
            dist_chunks.append(distances)
            candidates += len(members)
        if not id_chunks:
            empty = np.empty(0, dtype=np.int64)
            return IVFSearchResult(empty, empty.astype(np.float64), 0, len(probed))
        ids = np.concatenate(id_chunks)
        distances = np.concatenate(dist_chunks)
        top_ids, top_dists = _top_k(ids, distances, k)
        return IVFSearchResult(top_ids, top_dists, candidates, len(probed))

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify members/codes stay aligned and object IDs stay unique."""
        if self.coarse is not None:
            assert len(self._members) == self.num_clusters
        assert len(self._members) == len(self._codes)
        seen: set[int] = set()
        for cluster, (members, codes) in enumerate(
            zip(self._members, self._codes)
        ):
            assert len(members) == len(codes), (
                f"cluster {cluster}: {len(members)} members, "
                f"{len(codes)} codes"
            )
            for oid in members:
                assert oid not in seen, f"object {oid} stored twice"
                seen.add(oid)

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Same cost model as the non-residual index."""
        n = len(self)
        per_object = self.pq.code_bytes_per_vector() + 4 + 4
        static = self.pq.codebook_bytes()
        if self.coarse is not None:
            static += self.coarse.center_bytes()
        return n * per_object + static
