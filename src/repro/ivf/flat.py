"""IVF-Flat: inverted-file search over raw (unquantized) vectors.

The second standard IVF configuration real systems ship (Milvus's
``IVF_FLAT`` next to ``IVF_PQ``): the same coarse clustering and probe
logic as :class:`~repro.ivf.IVFPQIndex`, but candidates are scored with
*exact* distances on stored float vectors.  It trades ~`4d`× the code
memory for zero quantization error, which makes it the clean instrument
for separating the two error sources in any IVF result: recall lost to
*probing* (missed clusters — present here too) vs recall lost to
*quantization* (absent here).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..quantization import squared_l2
from .coarse import CoarseQuantizer, default_num_clusters
from .ivfpq import IVFSearchResult, _InvertedList, _top_k

__all__ = ["IVFFlatIndex"]


class IVFFlatIndex:
    """Dynamic inverted-file index over raw vectors (exact in-cluster scoring).

    Args:
        num_clusters: ``K``; defaults to ``⌈√n⌉`` of the training set.
        seed: Seed for the coarse k-means.
    """

    def __init__(
        self, *, num_clusters: int | None = None, seed: int | None = None
    ) -> None:
        self._requested_clusters = num_clusters
        self.coarse: CoarseQuantizer | None = None
        self.seed = seed
        self._vectors = np.empty((0, 0), dtype=np.float64)
        # Deliberately int32 in core (small cluster ids, half the memory);
        # widened to the int64 contract at the shm publish boundary.
        self._clusters = np.empty(0, dtype=np.int32)  # repro: noqa-D001
        self._row_of: dict[int, int] = {}
        self._oid_of_row = np.empty(0, dtype=np.int64)
        self._free_rows: list[int] = []
        self._lists: list[_InvertedList] = []

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`train` has been called."""
        return self.coarse is not None

    @property
    def num_clusters(self) -> int:
        """``K``, the coarse cluster count."""
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        return self.coarse.num_clusters

    def __len__(self) -> int:
        return len(self._row_of)

    def __contains__(self, oid: int) -> bool:
        return oid in self._row_of

    # ------------------------------------------------------------------
    # Training / storage
    # ------------------------------------------------------------------
    def train(
        self,
        training_vectors: np.ndarray,
        *,
        max_iter: int = 20,
        max_training_points: int | None = 50000,
    ) -> "IVFFlatIndex":
        """Fit the coarse quantizer (no vectors are added)."""
        training_vectors = np.asarray(training_vectors, dtype=np.float64)
        k = self._requested_clusters or default_num_clusters(len(training_vectors))
        self.coarse = CoarseQuantizer(k, seed=self.seed).fit(
            training_vectors,
            max_iter=max_iter,
            max_training_points=max_training_points,
        )
        self._lists = [_InvertedList() for _ in range(k)]
        self._vectors = np.empty((0, training_vectors.shape[1]), dtype=np.float64)
        return self

    def _grow(self, extra: int, dim: int) -> None:
        needed = len(self._oid_of_row) - len(self._free_rows) + extra
        capacity = len(self._oid_of_row)
        if needed <= capacity:
            return
        new_capacity = max(needed, 2 * capacity, 16)
        grown = np.empty((new_capacity, dim), dtype=np.float64)
        grown[:capacity] = self._vectors
        self._vectors = grown
        self._clusters = np.concatenate(
            [self._clusters, np.full(new_capacity - capacity, -1, dtype=np.int32)]
        )
        self._oid_of_row = np.concatenate(
            [self._oid_of_row, np.full(new_capacity - capacity, -1, dtype=np.int64)]
        )
        self._free_rows.extend(range(new_capacity - 1, capacity - 1, -1))

    def add(self, ids: Sequence[int], vectors: np.ndarray) -> np.ndarray:
        """Insert vectors under the given (fresh) object IDs."""
        if self.coarse is None:
            raise RuntimeError("index is not trained; call train() first")
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        ids = list(ids)
        if len(ids) != vectors.shape[0]:
            raise ValueError(f"{len(ids)} ids but {vectors.shape[0]} vectors")
        for oid in ids:
            if oid in self._row_of:
                raise KeyError(f"object {oid} already present")
        clusters = self.coarse.assign(vectors)
        self._grow(len(ids), vectors.shape[1])
        for oid, cluster, vector in zip(ids, clusters, vectors):
            row = self._free_rows.pop()
            self._row_of[oid] = row
            self._oid_of_row[row] = oid
            self._clusters[row] = cluster
            self._vectors[row] = vector
            self._lists[int(cluster)].add(oid)
        return clusters.astype(np.int32)  # repro: noqa-D001 — in-core plane is int32 by design

    def remove(self, ids: Iterable[int]) -> None:
        """Delete the given object IDs (KeyError if any is absent)."""
        for oid in ids:
            row = self._row_of.pop(oid)
            self._lists[int(self._clusters[row])].remove(oid)
            self._clusters[row] = -1
            self._oid_of_row[row] = -1
            self._free_rows.append(row)

    # ------------------------------------------------------------------
    # Search
    # ------------------------------------------------------------------
    def search(
        self,
        query: np.ndarray,
        k: int,
        *,
        nprobe: int | None = None,
        allowed_mask: np.ndarray | None = None,
    ) -> IVFSearchResult:
        """Top-``k`` with exact distances inside the probed clusters."""
        if self.coarse is None:
            raise RuntimeError("index is not trained")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        query = np.asarray(query, dtype=np.float64)
        if nprobe is None:
            nprobe = max(1, self.num_clusters // 10)
        probed = self.coarse.nearest_centers(query, nprobe)
        chunks = []
        for cluster in probed:
            members = self._lists[int(cluster)].as_array()
            if members.size == 0:
                continue
            if allowed_mask is not None:
                members = members[allowed_mask[members]]
                if members.size == 0:
                    continue
            chunks.append(members)
        if not chunks:
            empty = np.empty(0, dtype=np.int64)
            return IVFSearchResult(empty, empty.astype(np.float64), 0, len(probed))
        candidates = np.concatenate(chunks)
        rows = np.asarray(
            [self._row_of[int(oid)] for oid in candidates], dtype=np.int64
        )
        distances = squared_l2(self._vectors[rows], query)
        ids, dists = _top_k(candidates, distances, k)
        return IVFSearchResult(ids, dists, len(candidates), len(probed))

    # ------------------------------------------------------------------
    # Invariant checking (sanitizer hook)
    # ------------------------------------------------------------------
    def check_invariants(self) -> None:
        """Verify row-map bijectivity, free-list hygiene, and list membership."""
        capacity = len(self._oid_of_row)
        assert len(self._clusters) == capacity, "clusters/rows capacity mismatch"
        assert len(self._row_of) + len(self._free_rows) == capacity, (
            "live + free rows != capacity"
        )
        free = set(self._free_rows)
        assert len(free) == len(self._free_rows), "duplicate free rows"
        for row in free:
            assert self._oid_of_row[row] == -1, f"free row {row} keeps an oid"
            assert self._clusters[row] == -1, f"free row {row} keeps a cluster"
        members_total = 0
        for oid, row in self._row_of.items():
            assert row not in free, f"live object {oid} on a free row"
            assert self._oid_of_row[row] == oid, f"row map broken for {oid}"
            cluster = int(self._clusters[row])
            assert 0 <= cluster < len(self._lists), f"bad cluster for {oid}"
            assert oid in self._lists[cluster], (
                f"object {oid} missing from inverted list {cluster}"
            )
        members_total = sum(len(inverted) for inverted in self._lists)
        assert members_total == len(self._row_of), (
            "inverted lists do not partition the stored objects"
        )

    # ------------------------------------------------------------------
    # Memory model
    # ------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Float32 vectors + 4 B cluster ID + 4 B list entry per object."""
        dim = self._vectors.shape[1] if self._vectors.size else 0
        static = self.coarse.center_bytes() if self.coarse is not None else 0
        return len(self) * (4 * dim + 8) + static
