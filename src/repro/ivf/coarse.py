"""Coarse quantizer: the IVF layer's ``K`` cluster centers.

The inverted-file (IVF) construction partitions the object set into
``K = Θ(√n)`` coarse clusters (Sec. 2.2 of the paper).  This module owns the
coarse centers: training them, assigning vectors to their nearest center, and
ranking centers by distance to a query.
"""

from __future__ import annotations

import numpy as np

from .. import kernels
from ..quantization import assign_to_centroids, kmeans, pairwise_squared_l2

__all__ = ["CoarseQuantizer", "default_num_clusters"]


def default_num_clusters(num_objects: int) -> int:
    """The paper's default coarse cluster count, ``K = ⌈√n⌉`` (min 1)."""
    return max(1, int(round(num_objects**0.5)))


class CoarseQuantizer:
    """K-means coarse quantizer over full-dimensional vectors.

    Args:
        num_clusters: ``K``, the number of coarse clusters.
        seed: Seed for k-means initialization.

    Attributes:
        centers: After :meth:`fit`, array of shape ``(K, d)``.
    """

    def __init__(self, num_clusters: int, *, seed: int | None = None) -> None:
        if num_clusters < 1:
            raise ValueError(f"num_clusters must be >= 1, got {num_clusters}")
        self.num_clusters = num_clusters
        self.seed = seed
        self.centers: np.ndarray | None = None

    @property
    def is_trained(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self.centers is not None

    def _require_trained(self) -> np.ndarray:
        if self.centers is None:
            raise RuntimeError("CoarseQuantizer is not trained; call fit() first")
        return self.centers

    def fit(
        self,
        training_vectors: np.ndarray,
        *,
        max_iter: int = 20,
        max_training_points: int | None = 50000,
    ) -> "CoarseQuantizer":
        """Learn the ``K`` coarse centers from training data.

        Args:
            training_vectors: Array of shape ``(n, d)`` with ``n >= K``.
            max_iter: Lloyd iterations.
            max_training_points: Optional subsample cap for large inputs.

        Returns:
            ``self``, for chaining.
        """
        training_vectors = np.asarray(training_vectors, dtype=np.float64)
        if training_vectors.ndim != 2:
            raise ValueError(
                f"training vectors must be 2-D, got {training_vectors.shape}"
            )
        n = training_vectors.shape[0]
        if n < self.num_clusters:
            raise ValueError(
                f"need at least K={self.num_clusters} training points, got {n}"
            )
        if max_training_points is not None and n > max_training_points:
            rng = np.random.default_rng(self.seed)
            sample = rng.choice(n, size=max_training_points, replace=False)
            training_vectors = training_vectors[sample]
        result = kmeans(
            training_vectors, self.num_clusters, max_iter=max_iter, seed=self.seed
        )
        self.centers = result.centroids
        return self

    def assign(self, vectors: np.ndarray) -> np.ndarray:
        """Nearest coarse-cluster ID for each row of ``vectors``.

        Args:
            vectors: Array of shape ``(n, d)``.

        Returns:
            Integer array of shape ``(n,)`` with entries in ``[0, K)``.
        """
        centers = self._require_trained()
        vectors = np.atleast_2d(np.asarray(vectors, dtype=np.float64))
        labels, _ = assign_to_centroids(vectors, centers)
        return labels

    def center_distances(self, query: np.ndarray) -> np.ndarray:
        """Squared distances from ``query`` to every coarse center.

        Args:
            query: Array of shape ``(d,)``.

        Returns:
            Array of shape ``(K,)``.
        """
        centers = self._require_trained()
        query = np.asarray(query, dtype=np.float64)
        return pairwise_squared_l2(query[None, :], centers)[0]

    def nearest_centers(self, query: np.ndarray, count: int) -> np.ndarray:
        """IDs of the ``count`` coarse centers nearest to ``query``."""
        dist = self.center_distances(query)
        count = min(count, self.num_clusters)
        order = np.argpartition(dist, count - 1)[:count]
        return order[np.argsort(dist[order])]

    def probe_order(
        self, query: np.ndarray, *, limit: int | None = None
    ) -> np.ndarray:
        """Center IDs ascending by distance, ties by ID (stable order).

        Unlike :meth:`nearest_centers` (whose tie order at the cut is
        unspecified), this is the *stable* probe order the iterator-model
        paths depend on.  ``limit`` returns only the first ``limit`` IDs —
        bit-identical to slicing the full order, but computed via a stable
        argpartition-then-sort instead of a full ``O(K log K)`` sort.

        Args:
            query: Array of shape ``(d,)``.
            limit: Optional prefix length.

        Returns:
            Integer array of cluster IDs.
        """
        return kernels.stable_order(self.center_distances(query), limit=limit)

    def center_bytes(self) -> int:
        """C-equivalent bytes of the stored centers (float32)."""
        if self.centers is None:
            return 0
        return int(self.centers.size) * 4
