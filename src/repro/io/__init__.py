"""Index persistence (save/load to .npz archives)."""

from .serialization import FORMAT_VERSION, SerializationError, load_index, save_index

__all__ = ["save_index", "load_index", "SerializationError", "FORMAT_VERSION"]
