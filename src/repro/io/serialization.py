"""Index persistence: save/load to a single ``.npz`` file.

Operational completeness for the reproduction: a trained index (k-means
output + codes + attribute map) is expensive to build, so deployments need
to persist it.  The format is one compressed numpy archive holding the
trained quantizers, the encoded storage, the attribute map, and a JSON
metadata record (format version, index kind, parameters).

Trees are *not* serialized node-by-node: both RangePQ's BST and RangePQ+'s
bucket layer rebuild deterministically from the (attr, oid, cluster) triples
in ``O(n log n)``, which keeps the format simple and version-stable.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

import numpy as np

from ..core import AdaptiveLPolicy, FixedLPolicy, LPolicy, RangePQ, RangePQPlus
from ..ivf import IVFPQIndex

__all__ = [
    "FORMAT_VERSION",
    "save_index",
    "load_index",
    "SerializationError",
]

FORMAT_VERSION = 1


class SerializationError(RuntimeError):
    """Raised when an archive is missing, corrupt, or from a newer format."""


def _policy_to_dict(policy: LPolicy) -> dict:
    if isinstance(policy, AdaptiveLPolicy):
        return {"kind": "adaptive", "l_base": policy.l_base, "r_base": policy.r_base}
    if isinstance(policy, FixedLPolicy):
        return {"kind": "fixed", "l": policy.l}
    raise SerializationError(
        f"cannot serialize custom L policy {type(policy).__name__}"
    )


def _policy_from_dict(data: dict) -> LPolicy:
    if data["kind"] == "adaptive":
        return AdaptiveLPolicy(l_base=data["l_base"], r_base=data["r_base"])
    if data["kind"] == "fixed":
        return FixedLPolicy(l=data["l"])
    raise SerializationError(f"unknown L policy kind {data['kind']!r}")


def _pack_ivf(ivf: IVFPQIndex) -> dict[str, np.ndarray]:
    """Arrays fully describing a trained, populated IVFPQIndex."""
    if not ivf.is_trained:
        raise SerializationError("cannot save an untrained index")
    from ..quantization import ProductQuantizer

    if type(ivf.pq) is not ProductQuantizer:
        # An OPQ (or other codec) has state beyond the codebooks (e.g. the
        # rotation matrix); loading it as a plain PQ would silently corrupt
        # distances, so refuse instead.
        raise SerializationError(
            f"archive format v{FORMAT_VERSION} only stores plain "
            f"ProductQuantizer codecs, not {type(ivf.pq).__name__}"
        )
    oids = np.asarray(ivf.ids(), dtype=np.int64)
    rows = np.asarray([ivf._row_of[int(oid)] for oid in oids], dtype=np.int64)
    return {
        "codebooks": ivf.pq.codebooks,
        "coarse_centers": ivf.coarse.centers,
        "oids": oids,
        "codes": ivf._codes[rows],
        "clusters": ivf._clusters[rows],
    }


def _unpack_ivf(archive, meta: dict, *, codes: np.ndarray | None = None) -> IVFPQIndex:
    """Rebuild an IVFPQIndex from archive arrays.

    Rows are assigned ``0..n-1`` in archive order (exactly what the
    free-list pop order of ``_grow`` from empty produces), which lets the
    row-keyed arrays be adopted wholesale — including a read-only
    ``codes`` memmap passed by :func:`load_index`'s ``mmap_mode`` path.
    """
    ivf = IVFPQIndex(
        int(meta["num_subspaces"]),
        num_clusters=int(meta["num_clusters"]),
        num_codewords=int(meta["num_codewords"]),
        seed=meta.get("seed"),
    )
    ivf.pq.codebooks = archive["codebooks"]
    ivf.pq._dim = int(meta["dim"])
    from ..ivf.coarse import CoarseQuantizer

    coarse = CoarseQuantizer(int(meta["num_clusters"]), seed=meta.get("seed"))
    coarse.centers = archive["coarse_centers"]
    ivf.coarse = coarse
    from ..ivf.ivfpq import _InvertedList

    oids = np.asarray(archive["oids"], dtype=np.int64)
    # The in-core cluster plane is deliberately int32 (cluster ids are
    # small); the shm publish path widens to int64 at the boundary.
    clusters = np.asarray(archive["clusters"], dtype=np.int32)  # repro: noqa-D001
    if codes is None:
        codes = np.ascontiguousarray(archive["codes"], dtype=ivf.pq.code_dtype)
    ivf._codes = codes
    ivf._clusters = clusters.copy()
    ivf._oid_of_row = oids.copy()
    ivf._row_of = {int(oid): row for row, oid in enumerate(oids.tolist())}
    ivf._free_rows = []
    ivf._lists = [_InvertedList() for _ in range(ivf.num_clusters)]
    for oid, cluster in zip(oids.tolist(), clusters.tolist()):
        ivf._lists[int(cluster)].add(oid)
    return ivf


def save_index(
    index: RangePQ | RangePQPlus,
    path: str | Path,
    *,
    compressed: bool = True,
) -> Path:
    """Persist a RangePQ or RangePQ+ index to ``path`` (``.npz``).

    The archive is written to a temporary file in the destination
    directory, fsynced, and atomically moved into place with
    :func:`os.replace` — a crash mid-save can leave a stray temp file but
    never a corrupt or partial archive at ``path``.  The WAL recovery path
    (:mod:`repro.service.wal`) relies on this: the newest snapshot in a
    service directory is always complete.

    Args:
        index: A populated index.
        path: Destination; a ``.npz`` suffix is appended if missing.
        compressed: Deflate the archive members (the default).  Pass
            ``False`` to store them raw, which makes the ``codes``
            payload eligible for ``load_index(..., mmap_mode="r")`` —
            worker processes then map the snapshot read-only instead of
            each copying it.

    Returns:
        The path actually written.
    """
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(path.suffix + ".npz")
    if isinstance(index, RangePQ):
        kind = "rangepq"
        extra: dict = {"alpha": index.tree.alpha}
    elif isinstance(index, RangePQPlus):
        kind = "rangepq_plus"
        extra = {"alpha": index.alpha, "epsilon": index.epsilon}
    else:
        raise SerializationError(f"unsupported index type {type(index).__name__}")

    ivf = index.ivf
    meta = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "num_subspaces": ivf.pq.num_subspaces,
        "num_codewords": ivf.pq.num_codewords,
        "num_clusters": ivf.num_clusters,
        "dim": ivf.pq.dim,
        "seed": ivf.seed,
        "l_policy": _policy_to_dict(index.l_policy),
        **extra,
    }
    arrays = _pack_ivf(ivf)
    attr_oids = np.asarray(list(index._attr), dtype=np.int64)
    attr_values = np.asarray(
        [index._attr[int(oid)] for oid in attr_oids], dtype=np.float64
    )
    descriptor, temp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(descriptor, "wb") as handle:
            saver = np.savez_compressed if compressed else np.savez
            saver(
                handle,
                meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
                attr_oids=attr_oids,
                attr_values=attr_values,
                **arrays,
            )
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp_name, path)
    except BaseException:  # repro: noqa-R004 - temp cleanup, then re-raise
        try:
            os.unlink(temp_name)
        except OSError:
            pass
        raise
    return path


def _memmap_member(path: Path, name: str) -> np.ndarray | None:
    """Memory-map one raw-stored ``.npy`` member of a zip archive.

    Returns ``None`` when the member is deflated (compressed archives
    cannot be mapped), absent, or an unsupported npy layout — callers
    fall back to the copying load path.  The member's absolute data
    offset comes from its *local* file header (the central directory's
    name/extra lengths may differ).
    """
    import zipfile

    member = name + ".npy"
    with zipfile.ZipFile(path) as archive_file:
        try:
            info = archive_file.getinfo(member)
        except KeyError:
            return None
        if info.compress_type != zipfile.ZIP_STORED:
            return None
    with open(path, "rb") as handle:
        handle.seek(info.header_offset)
        local_header = handle.read(30)
        if local_header[:4] != b"PK\x03\x04":
            return None
        name_len = int.from_bytes(local_header[26:28], "little")
        extra_len = int.from_bytes(local_header[28:30], "little")
        handle.seek(info.header_offset + 30 + name_len + extra_len)
        version = np.lib.format.read_magic(handle)
        if version == (1, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_1_0(handle)
        elif version == (2, 0):
            shape, fortran, dtype = np.lib.format.read_array_header_2_0(handle)
        else:
            return None
        if dtype.hasobject or fortran:
            return None
        offset = handle.tell()
    return np.memmap(path, dtype=dtype, mode="r", shape=shape, offset=offset)


def load_index(
    path: str | Path, *, mmap_mode: str | None = None
) -> RangePQ | RangePQPlus:
    """Load an index saved by :func:`save_index`.

    Args:
        path: An archive written by :func:`save_index`.
        mmap_mode: ``"r"`` maps the ``codes`` payload read-only straight
            from an *uncompressed* archive (``save_index(...,
            compressed=False)``) instead of copying it — several worker
            processes loading the same snapshot then share one page-cache
            copy.  Compressed archives fall back to the copying path.
            The loaded index serves queries normally; row-slot *reuse*
            (an insert after a delete) copies the codes on demand.

    Raises:
        SerializationError: On missing files, foreign archives, a newer
            format version, or an unsupported ``mmap_mode``.
    """
    path = Path(path)
    if mmap_mode not in (None, "r"):
        raise SerializationError(
            f"mmap_mode must be None or 'r', got {mmap_mode!r}"
        )
    if not path.exists():
        raise SerializationError(f"no such file: {path}")
    mapped_codes = (
        _memmap_member(path, "codes") if mmap_mode is not None else None
    )
    with np.load(path) as archive:
        if "meta" not in archive:
            raise SerializationError(f"{path} is not a repro index archive")
        meta = json.loads(bytes(archive["meta"].tobytes()).decode())
        if meta.get("format_version", 0) > FORMAT_VERSION:
            raise SerializationError(
                f"archive format v{meta['format_version']} is newer than "
                f"supported v{FORMAT_VERSION}"
            )
        ivf = _unpack_ivf(archive, meta, codes=mapped_codes)
        policy = _policy_from_dict(meta["l_policy"])
        attrs = dict(
            zip(
                archive["attr_oids"].tolist(),
                archive["attr_values"].tolist(),
            )
        )
        if set(attrs) != set(ivf.ids()):
            raise SerializationError("attribute map and IVF storage disagree")
        kind = meta["kind"]
        if kind == "rangepq":
            index: RangePQ | RangePQPlus = RangePQ(
                ivf, l_policy=policy, alpha=float(meta["alpha"])
            )
            index.tree.build(
                (attr, oid, ivf.cluster_of(oid)) for oid, attr in attrs.items()
            )
            index._attr = attrs
        elif kind == "rangepq_plus":
            index = RangePQPlus(
                ivf,
                epsilon=int(meta["epsilon"]),
                l_policy=policy,
                alpha=float(meta["alpha"]),
            )
            index._attr = attrs
            index._rebucket_all()
        else:
            raise SerializationError(f"unknown index kind {kind!r}")
    return index
