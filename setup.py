"""Setup shim.

``pip install -e .`` needs the ``wheel`` package for PEP 660 editable
installs; in fully offline environments without it, this shim allows the
legacy ``python setup.py develop`` fallback.  All metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
