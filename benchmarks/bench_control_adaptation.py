"""Extension — control-plane adaptation under a workload shift.

Drives the :mod:`repro.control` feedback loop end to end: a sharded
index served through the tiered (hot shm / cold mmap) read path sees its
range-width distribution shift wide, p99 inflates under the open-loop
adaptive-L formula, and the :class:`repro.control.ControlDaemon` walks
``l_base`` down inside its :class:`~repro.control.KnobEnvelope` until
p99 recovers — with a brute-force recall probe gating every move and a
cold→hot promotion checked bitwise.

Standalone (prints the decision log; ``--smoke`` for CI)::

    PYTHONPATH=src python benchmarks/bench_control_adaptation.py
    PYTHONPATH=src python benchmarks/bench_control_adaptation.py --smoke

equivalently: ``python -m repro control-bench [--smoke]``.  Also
collectable as a pytest-benchmark suite:
``pytest benchmarks/bench_control_adaptation.py``.
"""

from __future__ import annotations

import sys

from repro.control.bench import ControlBenchResult, main, run_control_bench

__all__ = ["ControlBenchResult", "main", "run_control_bench"]


# ----------------------------------------------------------------------
# pytest-benchmark entry point (collected by ``pytest benchmarks/``)
# ----------------------------------------------------------------------
def test_control_adaptation(benchmark):
    """Benchmark the adaptation scenario at the CI profile."""
    from benchmarks.conftest import SEED

    def drive():
        result = run_control_bench(
            n=2000,
            dim=16,
            queries_per_batch=40,
            max_cycles=6,
            seed=SEED,
            verbose=False,
        )
        assert result.bitwise_ok
        assert result.recall_held
        benchmark.extra_info["shifted_p99_ms"] = round(
            result.shifted_p99_ms, 2
        )
        benchmark.extra_info["adapted_p99_ms"] = round(
            result.adapted_p99_ms, 2
        )
        benchmark.extra_info["l_base_final"] = result.l_base_final
        benchmark.extra_info["rollbacks"] = result.rollbacks

    benchmark.pedantic(drive, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
