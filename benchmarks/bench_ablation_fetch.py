"""Ablation — object-fetch path inside SearchByCCenters (DESIGN.md §4.3).

The paper's ``FetchNewObject`` issues one ``O(log n)`` rank query per
retrieved object; this library's default path walks each cover subtree once
per cluster (``O(log n + output)``).  Both return the same objects (verified
in tests/test_fetch_modes.py); this benchmark quantifies the constant-factor
gap that motivated the guided iterator.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, make_query_runner
from repro.eval.harness import build_indexes

COVERAGE = 0.40  # wide range -> many fetches -> the paths diverge most


@pytest.fixture(scope="module")
def rangepq_index(workloads, substrates):
    return build_indexes(
        workloads["sift"], methods=("RangePQ",), base=substrates["sift"],
        seed=SEED, k=BENCH_PROFILE.k,
    )["RangePQ"]


@pytest.mark.parametrize("mode", ("guided", "rank"))
def test_ablation_fetch_mode(
    benchmark, mode, rangepq_index, workloads, query_ranges
):
    workload = workloads["sift"]
    ranges = query_ranges[("sift", COVERAGE)]
    import itertools

    cycle = itertools.cycle(list(zip(workload.queries, ranges)))

    def run():
        query, (lo, hi) = next(cycle)
        return rangepq_index.query(
            query, lo, hi, BENCH_PROFILE.k, fetch_mode=mode
        )

    benchmark.extra_info["fetch_mode"] = mode
    benchmark(run)
