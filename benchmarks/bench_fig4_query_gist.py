"""Fig. 4 — range-filtered query performance on the GIST-like workload.

Same protocol as Fig. 3 on the dense correlated-descriptor analogue (the
regime where the paper raises ``L_base`` to 3000).  Full series:
``python -m repro.eval.harness --figure 4``.
"""

from __future__ import annotations

import pytest

from benchmarks._query_bench import run_query_benchmark
from benchmarks.conftest import BENCH_PROFILE
from repro.eval.harness import METHOD_NAMES


@pytest.mark.parametrize("coverage", BENCH_PROFILE.coverages)
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig4_gist_query(
    benchmark, method, coverage, index_store, workloads, query_ranges
):
    run_query_benchmark(
        benchmark, "gist", method, coverage, index_store, workloads, query_ranges
    )
