"""Ablation — weight-balance parameter α (Def. 3.2).

Smaller α tolerates more skew (fewer rebuilds, taller tree); larger α keeps
the tree shorter at the price of more frequent subtree rebuilds.  This
benchmark measures insertion cost under sorted-order inserts — the
adversarial pattern for balance maintenance — across the admissible range.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.eval.harness import _fresh_objects, build_indexes

ALPHAS = (0.05, 0.1, 0.2, 0.25)


@pytest.mark.parametrize("alpha", ALPHAS)
def test_ablation_alpha_insert(benchmark, alpha, workloads, substrates):
    workload = workloads["sift"]
    from repro.core import RangePQ

    ivf = substrates["sift"].clone_empty()
    index = RangePQ.build(
        workload.vectors, workload.attrs, ivf=ivf, alpha=alpha
    )
    ids, vectors, attrs = _fresh_objects(workload, 2000, SEED)
    # Sorted-order attrs: the worst case for balance maintenance.
    order = attrs.argsort()
    pool = itertools.cycle(
        list(zip(vectors[order], attrs[order]))
    )
    fresh = itertools.count(40_000_000)

    def insert_one():
        vector, attr = next(pool)
        index.insert(next(fresh), vector, attr)

    benchmark.extra_info["alpha"] = alpha
    benchmark.pedantic(insert_one, rounds=BENCH_PROFILE.num_update_ops, iterations=1)
    benchmark.extra_info["rebuilds"] = index.tree.rebuild_count
    benchmark.extra_info["height"] = index.tree.height()
