"""Fig. 9 — impact of the PQ subspace count M on RangePQ+.

Paper series: query time and recall of RangePQ+ for M ∈ {d/16, d/8, d/4,
d/2} on every dataset.  Expected shape: larger M (finer codes) raises both
recall and per-candidate cost; M = d/4 is the sweet spot.  Full series:
``python -m repro.eval.harness --figure 9``.

Each M needs its own PQ training run, so this file keeps to the SIFT-like
workload; the harness covers all datasets.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, make_query_runner, recall_of
from repro.eval.harness import build_indexes, train_substrate

DIVISORS = (16, 8, 4, 2)
COVERAGE = 0.10


@pytest.fixture(scope="module")
def indexes_by_m(workloads):
    workload = workloads["sift"]
    built = {}
    for divisor in DIVISORS:
        m = workload.dim // divisor
        if m < 1 or workload.dim % m:
            continue
        base = train_substrate(workload, num_subspaces=m, seed=SEED)
        built[divisor] = build_indexes(
            workload, methods=("RangePQ+",), base=base, seed=SEED,
            k=BENCH_PROFILE.k,
        )["RangePQ+"]
    return built


@pytest.mark.parametrize("divisor", DIVISORS)
def test_fig9_m_sweep(benchmark, divisor, indexes_by_m, workloads, query_ranges):
    if divisor not in indexes_by_m:
        pytest.skip(f"d/{divisor} is not a valid subspace count here")
    index = indexes_by_m[divisor]
    workload = workloads["sift"]
    ranges = query_ranges[("sift", COVERAGE)]
    benchmark.extra_info["M"] = f"d/{divisor}"
    benchmark.extra_info["recall_at_k"] = recall_of(index, workload, ranges)
    benchmark(make_query_runner(index, workload, ranges))
