"""Fig. 11 — impact of L at fixed 10% range coverage.

Paper series: RangePQ+ query time and recall for L ∈ {500, 1000, 2000,
3000, 4000} at a 10% range (this calibrates L_base).  Here L is scaled to
the benchmark n (see ``scaled_l_base``).  Expected shape: time grows
~linearly with L, recall saturates.  Full series:
``python -m repro.eval.harness --figure 11``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, make_query_runner, recall_of
from repro.core import FixedLPolicy
from repro.eval.harness import build_indexes, scaled_l_base

L_MULTIPLIERS = (0.5, 1.0, 2.0, 3.0, 4.0)
COVERAGE = 0.10


@pytest.fixture(scope="module")
def indexes_by_l(workloads, substrates):
    workload = workloads["sift"]
    l_base = scaled_l_base("sift", workload.num_objects, BENCH_PROFILE.k)
    built = {}
    for multiplier in L_MULTIPLIERS:
        l_value = max(1, int(l_base * multiplier))
        built[multiplier] = (
            l_value,
            build_indexes(
                workload, methods=("RangePQ+",), base=substrates["sift"],
                seed=SEED, l_policy=FixedLPolicy(l=l_value), k=BENCH_PROFILE.k,
            )["RangePQ+"],
        )
    return built


@pytest.mark.parametrize("multiplier", L_MULTIPLIERS)
def test_fig11_l_sweep(benchmark, multiplier, indexes_by_l, workloads, query_ranges):
    l_value, index = indexes_by_l[multiplier]
    workload = workloads["sift"]
    ranges = query_ranges[("sift", COVERAGE)]
    benchmark.extra_info["L"] = l_value
    benchmark.extra_info["recall_at_k"] = recall_of(index, workload, ranges)
    benchmark(make_query_runner(index, workload, ranges))
