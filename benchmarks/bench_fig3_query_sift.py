"""Fig. 3 — range-filtered query performance on the SIFT-like workload.

Paper series: query time and Recall@100 vs range coverage, all five methods.
Expected shape: RangePQ+ fastest overall; RangePQ close behind; RII slower;
VBase/Milvus slowest in their scan regimes; RangePQ/RangePQ+ recall flat.
Full nine-coverage series: ``python -m repro.eval.harness --figure 3``.
"""

from __future__ import annotations

import pytest

from benchmarks._query_bench import run_query_benchmark
from benchmarks.conftest import BENCH_PROFILE
from repro.eval.harness import METHOD_NAMES


@pytest.mark.parametrize("coverage", BENCH_PROFILE.coverages)
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig3_sift_query(
    benchmark, method, coverage, index_store, workloads, query_ranges
):
    run_query_benchmark(
        benchmark, "sift", method, coverage, index_store, workloads, query_ranges
    )
