"""Fig. 8 — memory usage of each index.

The paper reports resident index size per method and dataset, compared with
the raw data size.  Memory is not a timing quantity, so this benchmark times
the (cheap) accounting call and carries the actual figure values in
``extra_info``: the index's C-equivalent bytes and the raw data bytes.
Expected shape: RangePQ+ ≪ RangePQ; RangePQ+ ≈ RII ≈ VBase; Milvus largest
linear method (float-stored codes); all below the raw data.  Full series:
``python -m repro.eval.harness --figure 8``.
"""

from __future__ import annotations

import pytest

from repro.eval.harness import METHOD_NAMES


@pytest.mark.parametrize("dataset", ("sift", "gist", "wit"))
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig8_memory(benchmark, dataset, method, index_store, workloads):
    index = index_store(dataset)[method]
    workload = workloads[dataset]
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["index_mb"] = index.memory_bytes() / 1e6
    benchmark.extra_info["raw_data_mb"] = (
        4 * workload.num_objects * workload.dim / 1e6
    )
    benchmark(index.memory_bytes)
