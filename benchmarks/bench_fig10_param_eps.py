"""Fig. 10 — impact of the bucket size ε on RangePQ+.

Paper series: memory, query time, and recall of RangePQ+ as ε varies.
Expected shape: smaller ε → more first-layer nodes → more memory; larger ε
→ longer O(ε) endpoint scans; ε = Θ(K) balances both.  Full series:
``python -m repro.eval.harness --figure 10``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, make_query_runner, recall_of
from repro.eval.harness import build_indexes

EPS_FACTORS = (0.25, 1.0, 4.0, 16.0)
COVERAGE = 0.10


@pytest.fixture(scope="module")
def indexes_by_eps(workloads, substrates):
    workload = workloads["sift"]
    base = substrates["sift"]
    built = {}
    for factor in EPS_FACTORS:
        epsilon = max(1, int(round(base.num_clusters * factor)))
        built[factor] = build_indexes(
            workload, methods=("RangePQ+",), base=base, seed=SEED,
            epsilon=epsilon, k=BENCH_PROFILE.k,
        )["RangePQ+"]
    return built


@pytest.mark.parametrize("factor", EPS_FACTORS)
def test_fig10_eps_sweep(
    benchmark, factor, indexes_by_eps, workloads, query_ranges
):
    index = indexes_by_eps[factor]
    workload = workloads["sift"]
    ranges = query_ranges[("sift", COVERAGE)]
    benchmark.extra_info["epsilon"] = index.epsilon
    benchmark.extra_info["index_mb"] = index.memory_bytes() / 1e6
    benchmark.extra_info["recall_at_k"] = recall_of(index, workload, ranges)
    benchmark(make_query_runner(index, workload, ranges))
