"""Fig. 7 — deletion cost per index.

Paper series: mean time to delete one object from each built index, per
dataset.  Expected shape: RangePQ+ cheapest (few auxiliary structures,
small constants); RangePQ close; RII pays for rewriting its external data
frame.  Full series: ``python -m repro.eval.harness --figure 7``.

Deletion consumes objects, so each round's victim is inserted in the
(untimed) setup phase and only the ``delete`` call is measured.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.eval.harness import METHOD_NAMES, build_indexes
from repro.eval.harness import _fresh_objects  # noqa: PLC2701 - harness helper


@pytest.mark.parametrize("dataset", ("sift", "gist", "wit"))
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig7_deletion(benchmark, dataset, method, workloads, substrates):
    workload = workloads[dataset]
    index = build_indexes(
        workload,
        methods=(method,),
        base=substrates[dataset],
        seed=SEED,
        k=BENCH_PROFILE.k,
    )[method]
    ids, vectors, attrs = _fresh_objects(workload, 2000, SEED)
    pool = itertools.cycle(zip(ids, vectors, attrs))
    fresh = itertools.count(30_000_000)

    def setup():
        _, vector, attr = next(pool)
        oid = next(fresh)
        index.insert(oid, vector, attr)
        return (oid,), {}

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.pedantic(
        index.delete, setup=setup, rounds=BENCH_PROFILE.num_update_ops,
        iterations=1,
    )
