"""Ablation — the value of encoding cluster IDs (SP/num) in the tree.

RangePQ's whole point is that the candidate clusters and their in-range
members can be read off the cover's ``SP``/``num`` aggregates without
touching the ``|O_Q|`` in-range objects.  This benchmark compares the real
query path against a stripped variant that uses the *same* tree only as an
attribute index: it enumerates every in-range object, groups them by coarse
cluster on the fly, and then runs the identical SearchByCCenters phase.
The gap is the contribution of the SP encoding itself.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.core.results import QueryStats
from repro.core.search import search_by_coarse_centers
from repro.eval.harness import build_indexes
from repro.tree import iter_range_objects

COVERAGE = 0.40


@pytest.fixture(scope="module")
def rangepq_index(workloads, substrates):
    return build_indexes(
        workloads["sift"], methods=("RangePQ",), base=substrates["sift"],
        seed=SEED, k=BENCH_PROFILE.k,
    )["RangePQ"]


def query_without_sp(index, query, lo, hi, k):
    """RangePQ query with the SP aggregates disabled (linear gather)."""
    groups: dict[int, list[int]] = {}
    for node in iter_range_objects(index.tree, lo, hi):
        groups.setdefault(node.cluster, []).append(node.oid)
    if not groups:
        return None
    in_range = sum(len(members) for members in groups.values())
    l_budget = index.l_policy.choose(in_range / max(len(index), 1))
    return search_by_coarse_centers(
        index.ivf,
        np.asarray(query, dtype=np.float64),
        k,
        l_budget,
        sorted(groups),
        lambda cluster: iter(groups[cluster]),
        QueryStats(),
    )


@pytest.mark.parametrize("variant", ("sp_encoded", "linear_gather"))
def test_ablation_sp_encoding(
    benchmark, variant, rangepq_index, workloads, query_ranges
):
    workload = workloads["sift"]
    ranges = query_ranges[("sift", COVERAGE)]
    cycle = itertools.cycle(list(zip(workload.queries, ranges)))

    if variant == "sp_encoded":

        def run():
            query, (lo, hi) = next(cycle)
            return rangepq_index.query(query, lo, hi, BENCH_PROFILE.k)

    else:

        def run():
            query, (lo, hi) = next(cycle)
            return query_without_sp(
                rangepq_index, query, lo, hi, BENCH_PROFILE.k
            )

    benchmark.extra_info["variant"] = variant
    benchmark(run)
