"""Extension — batched serving throughput of the batch execution engine.

Replays a Zipf-skewed request stream (a small pool of popular query vectors,
a handful of popular range filters — the shape of real serving traffic)
through ``batch_search`` at increasing batch sizes.  Larger batches amortize
more: identical requests coalesce, same-range requests share one tree
decomposition and member materialization, and the ADC-table cache absorbs
repeated query vectors.  Results stay bitwise identical to sequential
``query`` calls at every batch size.

Standalone (prints a throughput table; ``--smoke`` for CI)::

    PYTHONPATH=src python benchmarks/bench_batch_throughput.py
    PYTHONPATH=src python benchmarks/bench_batch_throughput.py --smoke

or as a pytest-benchmark suite: ``pytest benchmarks/bench_batch_throughput.py``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

import numpy as np

import pytest

from repro.core import AdaptiveLPolicy, RangePQPlus
from repro.datasets import load_workload
from repro.eval.harness import scaled_l_base
from repro.eval.latency import measure_batch_throughput

#: Full-profile defaults (the acceptance setting: 10k-vector sift_like).
DEFAULT_N = 10_000
DEFAULT_DIM = 64
DEFAULT_REQUESTS = 512
DEFAULT_BATCH_SIZES = (1, 4, 16, 64, 256)
DEFAULT_POOL = 64
DEFAULT_TEMPLATES = 8
DEFAULT_K = 20
DEFAULT_ZIPF = 1.3

#: Coverages the range templates are drawn from (paper-style grid subset).
TEMPLATE_COVERAGES = (0.01, 0.05, 0.10, 0.40)


def build_serving_workload(
    *,
    n: int = DEFAULT_N,
    dim: int = DEFAULT_DIM,
    num_requests: int = DEFAULT_REQUESTS,
    pool_size: int = DEFAULT_POOL,
    num_templates: int = DEFAULT_TEMPLATES,
    zipf_s: float = DEFAULT_ZIPF,
    seed: int = 0,
) -> tuple[RangePQPlus, np.ndarray, list[tuple[float, float]]]:
    """Build a RangePQ+ index plus a Zipf-shaped request stream.

    Query vectors are drawn Zipf(``zipf_s``) from a pool of ``pool_size``
    distinct vectors; ranges are drawn uniformly from ``num_templates``
    fixed templates spanning the paper's coverage grid.  Returns
    ``(index, queries, ranges)`` with ``len(queries) == num_requests``.
    """
    workload = load_workload(
        "sift", n=n, d=dim, num_queries=pool_size, seed=seed
    )
    l_base = scaled_l_base("sift", n)
    index = RangePQPlus.build(
        workload.vectors,
        workload.attrs,
        seed=seed,
        l_policy=AdaptiveLPolicy(l_base=l_base, r_base=0.10),
    )
    rng = np.random.default_rng(seed + 1)
    templates = [
        workload.range_for_coverage(
            TEMPLATE_COVERAGES[t % len(TEMPLATE_COVERAGES)], rng
        )
        for t in range(num_templates)
    ]
    # Zipf-ranked pool: request i asks pool vector with probability ∝ rank^-s.
    weights = np.arange(1, pool_size + 1, dtype=np.float64) ** -zipf_s
    weights /= weights.sum()
    picks = rng.choice(pool_size, size=num_requests, p=weights)
    queries = workload.queries[picks]
    ranges = [templates[int(t)] for t in rng.integers(0, num_templates, num_requests)]
    return index, queries, ranges


def run(
    *,
    n: int = DEFAULT_N,
    dim: int = DEFAULT_DIM,
    num_requests: int = DEFAULT_REQUESTS,
    batch_sizes: Sequence[int] = DEFAULT_BATCH_SIZES,
    pool_size: int = DEFAULT_POOL,
    num_templates: int = DEFAULT_TEMPLATES,
    zipf_s: float = DEFAULT_ZIPF,
    k: int = DEFAULT_K,
    seed: int = 0,
    verbose: bool = True,
):
    """Measure and (optionally) print the batch-size throughput sweep."""
    index, queries, ranges = build_serving_workload(
        n=n,
        dim=dim,
        num_requests=num_requests,
        pool_size=pool_size,
        num_templates=num_templates,
        zipf_s=zipf_s,
        seed=seed,
    )
    points = measure_batch_throughput(
        index, queries, ranges, k, batch_sizes=batch_sizes
    )
    baseline = points[0].qps
    if verbose:
        print(
            f"RangePQ+ batched throughput — n={n}, d={dim}, "
            f"{num_requests} requests, pool={pool_size}, "
            f"{num_templates} range templates, zipf_s={zipf_s}, k={k}"
        )
        header = (
            f"{'batch':>6} {'qps':>9} {'speedup':>8} {'cache_hit':>10} "
            f"{'plans':>6} {'plan_shared':>12}"
        )
        print(header)
        for point in points:
            print(
                f"{point.batch_size:>6} {point.qps:>9.1f} "
                f"{point.qps / baseline:>7.2f}x "
                f"{point.table_cache_hit_rate:>9.1%} "
                f"{point.num_plans:>6} {point.shared_plan_queries:>12}"
            )
    return points


def main(argv: Sequence[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Batched query throughput vs batch size on RangePQ+."
    )
    parser.add_argument("--n", type=int, default=DEFAULT_N)
    parser.add_argument("--dim", type=int, default=DEFAULT_DIM)
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS)
    parser.add_argument(
        "--batch-sizes",
        type=int,
        nargs="+",
        default=list(DEFAULT_BATCH_SIZES),
    )
    parser.add_argument("--pool", type=int, default=DEFAULT_POOL)
    parser.add_argument("--templates", type=int, default=DEFAULT_TEMPLATES)
    parser.add_argument("--zipf", type=float, default=DEFAULT_ZIPF)
    parser.add_argument("--k", type=int, default=DEFAULT_K)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="tiny CI profile (n=1200) exercising the full batch path",
    )
    args = parser.parse_args(argv)
    if args.smoke:
        args.n, args.dim = 1200, 32
        args.requests, args.pool, args.templates = 128, 16, 4
        args.batch_sizes = [1, 16, 64]
    points = run(
        n=args.n,
        dim=args.dim,
        num_requests=args.requests,
        batch_sizes=args.batch_sizes,
        pool_size=args.pool,
        num_templates=args.templates,
        zipf_s=args.zipf,
        k=args.k,
        seed=args.seed,
    )
    hit_rates = [point.table_cache_hit_rate for point in points]
    if max(hit_rates) <= 0.0:
        print("FAIL: ADC-table cache never hit under the Zipf workload")
        return 1
    return 0


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by ``pytest benchmarks/``)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def serving_setup():
    from benchmarks.conftest import BENCH_PROFILE, SEED

    index, queries, ranges = build_serving_workload(
        n=BENCH_PROFILE.n,
        dim=BENCH_PROFILE.dims["sift"],
        num_requests=128,
        pool_size=16,
        num_templates=4,
        seed=SEED,
    )
    return index, queries, ranges, BENCH_PROFILE.k


@pytest.mark.parametrize("batch_size", [1, 16, 64])
def test_batch_throughput(benchmark, batch_size, serving_setup):
    index, queries, ranges, k = serving_setup
    pairs = list(zip(queries, ranges))

    def replay():
        index.ivf.clear_caches()
        for start in range(0, len(pairs), batch_size):
            chunk = pairs[start : start + batch_size]
            index.batch_search(
                np.asarray([query for query, _ in chunk]),
                [rng for _, rng in chunk],
                k,
            )

    benchmark.extra_info["batch_size"] = batch_size
    benchmark.extra_info["requests"] = len(pairs)
    benchmark(replay)


if __name__ == "__main__":
    sys.exit(main())
