"""Shared fixtures for the per-figure benchmark suite.

Everything expensive (workload generation, k-means training, index builds)
happens once per session; each benchmark then times only the operation the
corresponding paper figure measures.  The benchmark profile is intentionally
small so ``pytest benchmarks/ --benchmark-only`` completes in minutes; the
full paper-shaped sweeps (all nine coverages, larger n) are produced by
``python -m repro.eval.harness --figure N --scale default``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.eval.harness import (
    METHOD_NAMES,
    ScaleProfile,
    build_indexes,
    make_workload,
    train_substrate,
)
from repro.eval.groundtruth import exact_range_knn
from repro.eval.metrics import mean_metric, nn_recall_at_k

#: Benchmark-scale profile (fast; see module docstring).
BENCH_PROFILE = ScaleProfile(
    name="bench",
    n=1500,
    dims={"sift": 64, "gist": 96, "wit": 128},
    num_queries=10,
    k=20,
    coverages=(0.01, 0.10, 0.40),
    num_update_ops=30,
)

DATASETS = ("sift", "gist", "wit")
SEED = 0


@pytest.fixture(scope="session")
def workloads():
    """One scaled synthetic workload per paper dataset."""
    return {name: make_workload(name, BENCH_PROFILE, seed=SEED) for name in DATASETS}


@pytest.fixture(scope="session")
def substrates(workloads):
    """One trained IVFPQ substrate per dataset, shared by all methods."""
    return {
        name: train_substrate(workload, seed=SEED)
        for name, workload in workloads.items()
    }


@pytest.fixture(scope="session")
def index_store(workloads, substrates):
    """Lazily built (dataset, method) -> index cache.

    Query benchmarks share these instances; update benchmarks build their
    own private copies (they mutate state).
    """
    cache: dict[str, dict[str, object]] = {}

    def get(dataset: str):
        if dataset not in cache:
            cache[dataset] = build_indexes(
                workloads[dataset],
                base=substrates[dataset],
                seed=SEED,
                k=BENCH_PROFILE.k,
            )
        return cache[dataset]

    return get


@pytest.fixture(scope="session")
def query_ranges(workloads):
    """Deterministic per-(dataset, coverage) query ranges, one per query."""
    rng = np.random.default_rng(SEED + 1)
    ranges: dict[tuple[str, float], list[tuple[float, float]]] = {}
    for dataset, workload in workloads.items():
        for coverage in BENCH_PROFILE.coverages:
            ranges[(dataset, coverage)] = [
                workload.range_for_coverage(coverage, rng)
                for _ in range(len(workload.queries))
            ]
    return ranges


def make_query_runner(index, workload, ranges, k=BENCH_PROFILE.k):
    """Round-robin query closure for ``benchmark(...)``."""
    cycle = itertools.cycle(list(zip(workload.queries, ranges)))

    def run():
        query, (lo, hi) = next(cycle)
        return index.query(query, lo, hi, k)

    return run


def recall_of(index, workload, ranges, k=BENCH_PROFILE.k) -> float:
    """Mean Recall@k of an index over the fixed (query, range) grid."""
    recalls = []
    for query, (lo, hi) in zip(workload.queries, ranges):
        truth = exact_range_knn(workload.vectors, workload.attrs, query, lo, hi, k)
        result = index.query(query, lo, hi, k)
        recalls.append(nn_recall_at_k(result.ids, truth, k))
    return mean_metric(recalls)


def pytest_make_parametrize_id(config, val, argname):
    if isinstance(val, float):
        return f"{val:g}"
    return None
