"""Extension — static SeRF-style segment graph vs RangePQ+ (half-bounded).

The paper excludes SeRF from its experiments because it cannot handle
updates; this benchmark fills in the static half of that comparison on the
query regime SeRF's 1-D segment graph supports exactly: half-bounded
filters ``attr <= y``.  Expected shape: the graph answers narrow prefixes
quickly with high recall (it replays a dedicated proximity graph per
prefix), while RangePQ+ stays competitive *and* supports arbitrary two-sided
ranges plus updates.  The memory stamp of the segment graph's edge history
is attached as ``extra_info``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.eval.harness import build_indexes
from repro.graph import SegmentGraphIndex

PREFIX_COVERAGES = (0.10, 0.50)


@pytest.fixture(scope="module")
def serf_index(workloads):
    workload = workloads["sift"]
    return SegmentGraphIndex.build(
        workload.vectors, workload.attrs, m=8, ef_construction=60
    )


@pytest.fixture(scope="module")
def rangepq_plus(workloads, substrates):
    return build_indexes(
        workloads["sift"], methods=("RangePQ+",), base=substrates["sift"],
        seed=SEED, k=BENCH_PROFILE.k,
    )["RangePQ+"]


def prefix_bound(workload, coverage):
    ordered = np.sort(workload.attrs)
    return float(ordered[int(coverage * (len(ordered) - 1))])


@pytest.mark.parametrize("coverage", PREFIX_COVERAGES)
def test_serf_prefix_query(benchmark, coverage, serf_index, workloads):
    workload = workloads["sift"]
    bound = prefix_bound(workload, coverage)
    cycle = itertools.cycle(workload.queries)

    def run():
        return serf_index.query_prefix(next(cycle), bound, BENCH_PROFILE.k)

    benchmark.extra_info["method"] = "SeRF-1D (static)"
    benchmark.extra_info["coverage"] = coverage
    benchmark.extra_info["memory_mb"] = serf_index.memory_bytes() / 1e6
    benchmark(run)


@pytest.mark.parametrize("coverage", PREFIX_COVERAGES)
def test_rangepq_plus_prefix_query(
    benchmark, coverage, rangepq_plus, workloads
):
    workload = workloads["sift"]
    bound = prefix_bound(workload, coverage)
    lo = float(workload.attrs.min())
    cycle = itertools.cycle(workload.queries)

    def run():
        return rangepq_plus.query(next(cycle), lo, bound, BENCH_PROFILE.k)

    benchmark.extra_info["method"] = "RangePQ+"
    benchmark.extra_info["coverage"] = coverage
    benchmark.extra_info["memory_mb"] = rangepq_plus.memory_bytes() / 1e6
    benchmark(run)
