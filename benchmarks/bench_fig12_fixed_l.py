"""Fig. 12 — fixed L across range coverages (motivates the adaptive policy).

Paper series: RangePQ+ with a *fixed* L queried at growing coverages;
Recall@100 collapses as the range grows because L stays constant while the
candidate population explodes.  The adaptive policy (used everywhere else)
keeps recall flat.  Full series: ``python -m repro.eval.harness --figure 12``.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, make_query_runner, recall_of
from repro.core import FixedLPolicy
from repro.eval.harness import build_indexes, scaled_l_base


@pytest.fixture(scope="module")
def fixed_l_index(workloads, substrates):
    workload = workloads["sift"]
    l_base = scaled_l_base("sift", workload.num_objects, BENCH_PROFILE.k)
    return build_indexes(
        workload, methods=("RangePQ+",), base=substrates["sift"], seed=SEED,
        l_policy=FixedLPolicy(l=l_base), k=BENCH_PROFILE.k,
    )["RangePQ+"]


@pytest.mark.parametrize("coverage", BENCH_PROFILE.coverages)
def test_fig12_fixed_l(benchmark, coverage, fixed_l_index, workloads, query_ranges):
    workload = workloads["sift"]
    ranges = query_ranges[("sift", coverage)]
    benchmark.extra_info["coverage"] = coverage
    benchmark.extra_info["recall_at_k"] = recall_of(
        fixed_l_index, workload, ranges
    )
    benchmark(make_query_runner(fixed_l_index, workload, ranges))
