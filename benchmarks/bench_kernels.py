"""Kernel-backend microbenchmarks: ``fast`` vs ``reference`` on the hot path.

Times the dispatcher primitives at SIFT-like PQ shapes (``M=8``, ``Z=256``,
``n >= 100k`` codes) for every registered backend, asserting on every
repeat that the backends return **bit-identical** arrays before any number
is reported.  The headline figure is the full-store ADC scan — the paper's
per-candidate distance kernel — where the fused flat-gather backend is
expected to clear 1.5x over the verbatim reference.

Standalone (prints the comparison; ``--smoke`` for CI)::

    PYTHONPATH=src python benchmarks/bench_kernels.py
    PYTHONPATH=src python benchmarks/bench_kernels.py --smoke

Also collectable as a pytest-benchmark suite:
``pytest benchmarks/bench_kernels.py``.
"""

from __future__ import annotations

import argparse
import time
from dataclasses import dataclass, field

import numpy as np
import pytest

from repro import kernels

__all__ = ["KernelBenchResult", "run_kernel_bench", "main"]

#: SIFT-like PQ shape: 8 subspaces, 256 codewords (one byte per subspace).
NUM_SUBSPACES = 8
NUM_CODEWORDS = 256


@dataclass
class KernelBenchResult:
    """Timings (seconds per call, best of ``repeats``) keyed by operation
    then backend, plus the count of bitwise-equivalence violations."""

    n: int
    repeats: int
    times: dict[str, dict[str, float]] = field(default_factory=dict)
    violations: int = 0

    def speedup(self, op: str) -> float:
        """``reference`` time over ``fast`` time for one operation."""
        return self.times[op]["reference"] / self.times[op]["fast"]


def _workload(n: int, seed: int):
    rng = np.random.default_rng(seed)
    table = rng.normal(size=(NUM_SUBSPACES, NUM_CODEWORDS)).astype(np.float64)
    codes = rng.integers(
        0, NUM_CODEWORDS, size=(n, NUM_SUBSPACES)
    ).astype(np.uint8)
    rows = rng.integers(0, n, size=max(n // 8, 1)).astype(np.int64)
    center_dist = rng.integers(0, 64, size=4096).astype(np.float64)
    return table, codes, rows, center_dist


def run_kernel_bench(
    *,
    n: int = 100_000,
    repeats: int = 5,
    probe_limit: int = 64,
    seed: int = 0,
    verbose: bool = True,
) -> KernelBenchResult:
    """Time each kernel primitive under both backends on one workload.

    Args:
        n: Number of PQ code rows (the ADC scan length).
        repeats: Timed repeats per (op, backend); best time is kept.
        probe_limit: Prefix length for the ``stable_order(limit=)`` case.
        seed: Workload seed.
        verbose: Print a per-operation comparison table.

    Returns:
        A :class:`KernelBenchResult`; ``violations`` counts any repeat where
        a backend's output differed bitwise from the reference output.
    """
    table, codes, rows, center_dist = _workload(n, seed)
    scan_dist = kernels.adc_distances(table, codes)
    ops = {
        "adc_scan": lambda: kernels.adc_distances(table, codes),
        "adc_gather_rows": lambda: kernels.adc_for_rows(table, codes, rows),
        "stable_order_limit": lambda: kernels.stable_order(
            center_dist, limit=probe_limit
        ),
        "topk_order": lambda: kernels.topk_order(scan_dist, 10),
    }
    result = KernelBenchResult(n=n, repeats=repeats)
    baselines: dict[str, np.ndarray] = {}
    for op, fn in ops.items():
        result.times[op] = {}
        # Reference first: it produces the baseline the others diff against.
        for backend in ("reference", "fast"):
            with kernels.use_backend(backend):
                best = float("inf")
                for _ in range(repeats):
                    start = time.perf_counter()
                    out = fn()
                    best = min(best, time.perf_counter() - start)
                if backend == "reference":
                    baselines[op] = out
                elif not np.array_equal(out, baselines[op]):
                    result.violations += 1
            result.times[op][backend] = best
    if verbose:
        print(
            f"kernel backends @ M={NUM_SUBSPACES} Z={NUM_CODEWORDS} "
            f"n={n} (best of {repeats})"
        )
        for op in ops:
            ref = result.times[op]["reference"] * 1e3
            fst = result.times[op]["fast"] * 1e3
            print(
                f"  {op:<20} reference {ref:8.3f} ms   fast {fst:8.3f} ms"
                f"   speedup {result.speedup(op):5.2f}x"
            )
        print(f"  equivalence violations: {result.violations}")
    return result


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by ``pytest benchmarks/``)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_adc_scan_backend(benchmark, backend):
    """Benchmark the full-store ADC scan under one backend."""
    table, codes, _, _ = _workload(20_000, seed=0)
    with kernels.use_backend(backend):
        expected = kernels.adc_distances(table, codes)
        out = benchmark(lambda: kernels.adc_distances(table, codes))
    assert np.array_equal(out, expected)


def test_backend_equivalence_smoke(benchmark):
    """One bench pass asserting zero bitwise violations across all ops."""

    def drive():
        result = run_kernel_bench(n=20_000, repeats=2, verbose=False)
        assert result.violations == 0
        benchmark.extra_info["adc_scan_speedup"] = round(
            result.speedup("adc_scan"), 2
        )

    benchmark.pedantic(drive, rounds=1, iterations=1)


def main(argv: list[str] | None = None) -> int:
    """CLI driver; returns a non-zero exit code on equivalence violations."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small-n profile for CI (checks equivalence, not speedup)",
    )
    parser.add_argument("--n", type=int, default=None, help="code rows")
    parser.add_argument("--repeats", type=int, default=None)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)
    n = args.n if args.n is not None else (20_000 if args.smoke else 100_000)
    repeats = args.repeats if args.repeats is not None else (
        2 if args.smoke else 5
    )
    result = run_kernel_bench(n=n, repeats=repeats, seed=args.seed)
    return 1 if result.violations else 0


if __name__ == "__main__":
    raise SystemExit(main())
