"""Extension — multiprocess query scaling: worker pool vs thread baseline.

Answers one fixed sift-like query set serially, across Python threads,
and through :class:`repro.parallel.ParallelQueryExecutor` at each worker
count, checking every answer bitwise against the serial reference.  The
process pool reads PQ codes, attributes, and codebooks from shared
memory, so the only per-task traffic is the query vector and the top-k
reply — aggregate QPS scales with cores where the thread baseline
serializes on the GIL.  (On a single-core machine the pool *loses* to
threads — IPC overhead with no parallelism to buy — which is why the CI
profile checks correctness and liveness only.)

Standalone (prints the sweep; ``--smoke`` for CI)::

    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py
    PYTHONPATH=src python benchmarks/bench_parallel_scaling.py --smoke

equivalently: ``python -m repro parallel-bench [--smoke]``.  Also
collectable as a pytest-benchmark suite:
``pytest benchmarks/bench_parallel_scaling.py``.
"""

from __future__ import annotations

import os
import sys

import pytest

from repro import kernels
from repro.parallel.bench import ParallelBenchResult, main, run_parallel_bench

__all__ = ["ParallelBenchResult", "main", "run_parallel_bench"]


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by ``pytest benchmarks/``)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workers", [1, 2])
def test_parallel_scaling(benchmark, workers):
    """Benchmark the executor at one worker count on the CI profile."""
    from benchmarks.conftest import SEED

    def drive():
        result = run_parallel_bench(
            n=1200,
            dim=32,
            num_queries=16,
            repeats=1,
            worker_counts=(workers,),
            baseline_threads=2,
            seed=SEED,
            verbose=False,
        )
        assert result.violations == 0
        benchmark.extra_info["executor_qps"] = round(
            result.executor_qps[workers], 1
        )
        benchmark.extra_info["thread_qps"] = round(result.thread_qps, 1)

    benchmark.pedantic(drive, rounds=1, iterations=1)


@pytest.mark.parametrize("backend", ["reference", "fast"])
def test_parallel_scaling_kernel_backend(benchmark, backend, monkeypatch):
    """The bitwise serial-vs-parallel check must hold under either kernel
    backend (the env var propagates the choice into spawned workers; the
    ``use_backend`` scope covers the in-process serial reference)."""
    from benchmarks.conftest import SEED

    monkeypatch.setitem(os.environ, kernels.ENV_VAR, backend)

    def drive():
        with kernels.use_backend(backend):
            result = run_parallel_bench(
                n=1200,
                dim=32,
                num_queries=8,
                repeats=1,
                worker_counts=(2,),
                baseline_threads=1,
                seed=SEED,
                verbose=False,
            )
        assert result.violations == 0

    benchmark.pedantic(drive, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
