#!/usr/bin/env python3
"""Turn a pytest-benchmark JSON dump into per-figure tables.

The per-figure benchmark files attach the paper's figure coordinates
(dataset, method, coverage, recall, …) to every benchmark via
``extra_info``.  This script groups a ``--benchmark-json`` dump back into
those figures::

    pytest benchmarks/ --benchmark-only --benchmark-json=bench.json
    python benchmarks/report.py bench.json

Output: one table per benchmark module, rows = (params + extra_info +
mean/median microseconds).
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path

# Allow running as a plain script from the repo root.
sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.eval.reporting import format_table  # noqa: E402


def load_benchmarks(path: Path) -> list[dict]:
    """Load and lightly validate the pytest-benchmark JSON payload."""
    with open(path) as handle:
        payload = json.load(handle)
    if "benchmarks" not in payload:
        raise SystemExit(f"{path} is not a pytest-benchmark JSON dump")
    return payload["benchmarks"]


def group_by_module(benchmarks: list[dict]) -> dict[str, list[dict]]:
    groups: dict[str, list[dict]] = defaultdict(list)
    for bench in benchmarks:
        module = bench["fullname"].split("::")[0]
        groups[Path(module).stem].append(bench)
    return dict(sorted(groups.items()))


def table_for(benches: list[dict]) -> tuple[list[str], list[list]]:
    """Build (headers, rows) from one module's benchmarks."""
    info_keys: list[str] = []
    for bench in benches:
        for key in bench.get("extra_info", {}):
            if key not in info_keys:
                info_keys.append(key)
    headers = ["benchmark", *info_keys, "mean_us", "median_us"]
    rows = []
    for bench in benches:
        info = bench.get("extra_info", {})
        stats = bench["stats"]
        rows.append(
            [
                bench["name"],
                *[info.get(key, "") for key in info_keys],
                stats["mean"] * 1e6,
                stats["median"] * 1e6,
            ]
        )
    rows.sort(key=lambda row: str(row[1:]))
    return headers, rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("json_path", type=Path)
    args = parser.parse_args(argv)
    benchmarks = load_benchmarks(args.json_path)
    for module, benches in group_by_module(benchmarks).items():
        print(f"\n=== {module} ({len(benches)} benchmarks)")
        headers, rows = table_for(benches)
        print(format_table(headers, rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
