"""Fig. 6 — insertion cost per index.

Paper series: mean time to insert one object into each built index, per
dataset.  Expected shape: all PQ-backed methods cluster together (the
``O(KM)`` coarse assignment dominates) while the Milvus-like index is far
cheaper because it only buffers into a growing segment.  Full series:
``python -m repro.eval.harness --figure 6``.

Each benchmark builds a private index copy (insertion mutates state) and
times single-object inserts with fresh IDs drawn from an unseen pool.
"""

from __future__ import annotations

import itertools

import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.eval.harness import METHOD_NAMES, build_indexes
from repro.eval.harness import _fresh_objects  # noqa: PLC2701 - harness helper


@pytest.fixture(scope="module")
def insertion_pools(workloads):
    """Per-dataset pool of unseen (id, vector, attr) triples to insert."""
    pools = {}
    for dataset, workload in workloads.items():
        ids, vectors, attrs = _fresh_objects(workload, 3000, SEED)
        pools[dataset] = list(zip(ids, vectors, attrs))
    return pools


@pytest.mark.parametrize("dataset", ("sift", "gist", "wit"))
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig6_insertion(
    benchmark, dataset, method, workloads, substrates, insertion_pools
):
    index = build_indexes(
        workloads[dataset],
        methods=(method,),
        base=substrates[dataset],
        seed=SEED,
        k=BENCH_PROFILE.k,
    )[method]
    pool = itertools.cycle(insertion_pools[dataset])
    fresh = itertools.count(20_000_000)

    def insert_one():
        _, vector, attr = next(pool)
        index.insert(next(fresh), vector, attr)

    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.pedantic(insert_one, rounds=BENCH_PROFILE.num_update_ops, iterations=1)
