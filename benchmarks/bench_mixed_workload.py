"""Extension — mixed read/write workload throughput (not a paper figure).

The paper times queries, inserts, and deletes in isolation; production
vector stores interleave all three.  This benchmark drives each index with
a fixed op mix (70% queries, 20% inserts, 10% deletes) and times the whole
step stream, exposing interactions the isolated figures hide (e.g. Milvus'
growing segment making *queries* pay for cheap inserts, RangePQ+ rebuild
pauses amortizing away).
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.eval.harness import METHOD_NAMES, _fresh_objects, build_indexes


@pytest.mark.parametrize("method", METHOD_NAMES)
def test_mixed_workload(benchmark, method, workloads, substrates, query_ranges):
    workload = workloads["sift"]
    index = build_indexes(
        workload, methods=(method,), base=substrates["sift"], seed=SEED,
        k=BENCH_PROFILE.k,
    )[method]
    ids, vectors, attrs = _fresh_objects(workload, 3000, SEED)
    insert_pool = itertools.cycle(zip(vectors, attrs))
    fresh = itertools.count(50_000_000)
    inserted: list[int] = []
    ranges = itertools.cycle(query_ranges[("sift", 0.10)])
    queries = itertools.cycle(workload.queries)
    rng = np.random.default_rng(SEED)
    # Deterministic op schedule: 7 queries, 2 inserts, 1 delete per block.
    schedule = itertools.cycle("qqqqqqqiid")

    def step():
        op = next(schedule)
        if op == "q":
            query = next(queries)
            lo, hi = next(ranges)
            index.query(query, lo, hi, BENCH_PROFILE.k)
        elif op == "i":
            vector, attr = next(insert_pool)
            oid = next(fresh)
            index.insert(oid, vector, attr)
            inserted.append(oid)
        else:
            if inserted:
                index.delete(inserted.pop(int(rng.integers(len(inserted)))))

    benchmark.extra_info["method"] = method
    benchmark.extra_info["mix"] = "70q/20i/10d"
    benchmark.pedantic(step, rounds=100, iterations=1)
