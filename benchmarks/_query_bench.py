"""Shared body of the Fig. 3/4/5 query benchmarks (one module per dataset)."""

from __future__ import annotations

from benchmarks.conftest import BENCH_PROFILE, make_query_runner, recall_of


def run_query_benchmark(
    benchmark, dataset, method, coverage, index_store, workloads, query_ranges
):
    """Time range-filtered queries for one (dataset, method, coverage) cell.

    Attaches the measured Recall@k and the coverage to ``extra_info`` so the
    benchmark JSON carries the same two series the paper's figures plot.
    """
    index = index_store(dataset)[method]
    workload = workloads[dataset]
    ranges = query_ranges[(dataset, coverage)]
    benchmark.extra_info["dataset"] = dataset
    benchmark.extra_info["method"] = method
    benchmark.extra_info["coverage"] = coverage
    benchmark.extra_info["recall_at_k"] = recall_of(index, workload, ranges)
    benchmark(make_query_runner(index, workload, ranges))
