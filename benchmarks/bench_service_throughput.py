"""Extension — concurrent serving throughput: IndexService vs global lock.

Head-to-head closed-loop comparison on deep-copied identical index state:
N reader threads + M writer threads drive a Zipf-shaped request stream
against (a) :class:`repro.service.GlobalLockService` — one mutex around
every op, maintenance inline — and (b) :class:`repro.service.IndexService`
— combined snapshot reads through ``execute_batch``, serialized writes,
rebuilds deferred to a background daemon.  Checks every read for
well-formedness; the full profile additionally requires the snapshot
service to beat the baseline on aggregate QPS.

Standalone (prints both reports; ``--smoke`` for CI)::

    PYTHONPATH=src python benchmarks/bench_service_throughput.py
    PYTHONPATH=src python benchmarks/bench_service_throughput.py --smoke

equivalently: ``python -m repro serve-bench [--smoke]``.  Also collectable
as a pytest-benchmark suite: ``pytest benchmarks/bench_service_throughput.py``.
"""

from __future__ import annotations

import sys

import pytest

from repro.service.bench import ServeBenchResult, main, run_serve_bench

__all__ = ["ServeBenchResult", "main", "run_serve_bench"]


# ----------------------------------------------------------------------
# pytest-benchmark entry points (collected by ``pytest benchmarks/``)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mode", ["global-lock", "snapshot-service"])
def test_service_throughput(benchmark, mode):
    """Benchmark one side of the comparison at the CI profile."""
    from benchmarks.conftest import SEED

    def drive():
        result = run_serve_bench(
            n=1200,
            dim=32,
            num_readers=4,
            num_writers=1,
            duration_s=0.5,
            pool_size=16,
            num_templates=4,
            seed=SEED,
            verbose=False,
        )
        assert result.violations == 0
        report = (
            result.baseline if mode == "global-lock" else result.service
        )
        benchmark.extra_info["total_qps"] = round(report.total_qps, 1)
        benchmark.extra_info["read_p99_ms"] = round(
            report.reads.percentile(99), 2
        )

    benchmark.pedantic(drive, rounds=1, iterations=1)


if __name__ == "__main__":
    sys.exit(main())
