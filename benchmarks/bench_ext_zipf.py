"""Extension — robustness under a Zipf-skewed attribute distribution.

The paper's SIFT/GIST protocol draws attributes uniformly; real filter
columns (popularity, sales rank) are heavy-tailed.  Under Zipf, equal-width
attribute ranges cover wildly different object counts, stressing
selectivity-driven plan choices (Milvus AUTO, VBase) and the adaptive-L
policy.  This bench times RangePQ+ and the Milvus-like AUTO planner on the
same coverage-controlled ranges used elsewhere, but over Zipf attributes.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED, recall_of
from repro.datasets import zipfian_attributes
from repro.eval.harness import build_indexes

COVERAGES = (0.01, 0.10, 0.40)
METHODS = ("Milvus", "RangePQ+")


@pytest.fixture(scope="module")
def zipf_setup(workloads, substrates):
    workload = workloads["sift"]
    rng = np.random.default_rng(SEED + 7)
    zipf_attrs = zipfian_attributes(
        workload.num_objects, num_values=1000, rng=rng
    )
    # Re-bind the workload's attributes: same vectors, skewed filter column.
    from dataclasses import replace

    skewed = replace(workload, attrs=zipf_attrs)
    indexes = build_indexes(
        skewed, methods=METHODS, base=substrates["sift"], seed=SEED,
        k=BENCH_PROFILE.k,
    )
    ranges = {
        coverage: [
            skewed.range_for_coverage(coverage, rng)
            for _ in range(len(skewed.queries))
        ]
        for coverage in COVERAGES
    }
    return skewed, indexes, ranges


@pytest.mark.parametrize("coverage", COVERAGES)
@pytest.mark.parametrize("method", METHODS)
def test_zipf_query(benchmark, method, coverage, zipf_setup):
    workload, indexes, ranges = zipf_setup
    index = indexes[method]
    benchmark.extra_info["method"] = method
    benchmark.extra_info["coverage"] = coverage
    benchmark.extra_info["attr_distribution"] = "zipf(1.2)"
    benchmark.extra_info["recall_at_k"] = recall_of(
        index, workload, ranges[coverage]
    )
    cycle = itertools.cycle(list(zip(workload.queries, ranges[coverage])))

    def run():
        query, (lo, hi) = next(cycle)
        return index.query(query, lo, hi, BENCH_PROFILE.k)

    benchmark(run)
