"""Fig. 5 — range-filtered query performance on the WIT-like workload.

Same protocol as Fig. 3 on ReLU-sparse CNN-style embeddings whose size
attribute is *correlated* with vector position.  Full series:
``python -m repro.eval.harness --figure 5``.
"""

from __future__ import annotations

import pytest

from benchmarks._query_bench import run_query_benchmark
from benchmarks.conftest import BENCH_PROFILE
from repro.eval.harness import METHOD_NAMES


@pytest.mark.parametrize("coverage", BENCH_PROFILE.coverages)
@pytest.mark.parametrize("method", METHOD_NAMES)
def test_fig5_wit_query(
    benchmark, method, coverage, index_store, workloads, query_ranges
):
    run_query_benchmark(
        benchmark, "wit", method, coverage, index_store, workloads, query_ranges
    )
