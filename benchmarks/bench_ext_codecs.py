"""Extension — codec study: plain PQ vs OPQ vs residual IVFADC.

Quantifies two substrate choices DESIGN.md documents:

* §4.1 non-residual codes: RangePQ needs one ADC table per query, so it
  cannot use residual encoding.  This bench shows what residual IVFADC
  buys on plain (unfiltered) search — the price RangePQ pays by design.
* OPQ (Ge et al.): an orthogonal pre-rotation that cuts quantization error
  on correlated data; drop-in compatible with the PQ API.

Each benchmark times a plain top-k search and attaches the measured
intersection recall against exact search in ``extra_info``.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from benchmarks.conftest import BENCH_PROFILE, SEED
from repro.ivf import IVFPQIndex, ResidualIVFPQIndex
from repro.quantization import OptimizedProductQuantizer

K = BENCH_PROFILE.k
NPROBE = 10


def exact_topk(vectors, query, k):
    return np.argsort(((vectors - query) ** 2).sum(axis=1))[:k]


@pytest.fixture(scope="module")
def codec_indexes(workloads):
    workload = workloads["gist"]  # correlated data: where codecs differ
    vectors = workload.vectors
    m = workload.dim // 8

    plain = IVFPQIndex(m, num_codewords=64, seed=SEED)
    plain.train(vectors)
    plain.add(range(len(vectors)), vectors)

    residual = ResidualIVFPQIndex(m, num_codewords=64, seed=SEED)
    residual.train(vectors)
    residual.add(range(len(vectors)), vectors)

    opq_index = IVFPQIndex(m, num_codewords=64, seed=SEED)
    opq_index.pq = OptimizedProductQuantizer(
        m, 64, opq_iterations=4, seed=SEED
    )
    opq_index.train(vectors)
    opq_index.add(range(len(vectors)), vectors)

    return {"pq": plain, "opq": opq_index, "residual-pq": residual}


@pytest.mark.parametrize("codec", ("pq", "opq", "residual-pq"))
def test_codec_search(benchmark, codec, codec_indexes, workloads):
    workload = workloads["gist"]
    index = codec_indexes[codec]
    recalls = []
    for query in workload.queries:
        exact = exact_topk(workload.vectors, query, K)
        got = index.search(query, K, nprobe=NPROBE).ids
        recalls.append(len(set(got.tolist()) & set(exact.tolist())) / K)
    benchmark.extra_info["codec"] = codec
    benchmark.extra_info["overlap_at_k"] = float(np.mean(recalls))
    cycle = itertools.cycle(workload.queries)
    benchmark(lambda: index.search(next(cycle), K, nprobe=NPROBE))
