"""Ablation — attribute-directory backend: sorted list vs B+-tree.

The baselines need a secondary attribute index.  The sorted-Python-list
directory pays an ``O(n)`` memmove per update; the order-t B+-tree pays
``O(log n)`` with node splits.  Range *reads* favor the contiguous list.
This bench quantifies both sides at benchmark scale so the trade-off
documented in ``repro/btree`` is measured, not asserted.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest

from repro.baselines import AttributeDirectory
from repro.btree import BPlusAttributeDirectory

N = 20_000
BACKENDS = {
    "sorted-list": AttributeDirectory,
    "b+tree": BPlusAttributeDirectory,
}


@pytest.fixture(scope="module")
def populated():
    rng = np.random.default_rng(0)
    attrs = rng.uniform(0, 10_000, size=N)
    built = {}
    for name, factory in BACKENDS.items():
        directory = factory()
        for oid in range(N):
            directory.add(oid, float(attrs[oid]))
        built[name] = directory
    return built, attrs


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_directory_insert(benchmark, backend, populated):
    built, attrs = populated
    directory = built[backend]
    rng = np.random.default_rng(1)
    fresh = itertools.count(10_000_000)

    def insert_one():
        directory.add(next(fresh), float(rng.uniform(0, 10_000)))

    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["operation"] = "insert"
    benchmark.pedantic(insert_one, rounds=200, iterations=1)


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_directory_range_count(benchmark, backend, populated):
    built, attrs = populated
    directory = built[backend]
    rng = np.random.default_rng(2)
    bounds = [
        (lo, lo + 1000.0) for lo in rng.uniform(0, 9000, size=64)
    ]
    cycle = itertools.cycle(bounds)

    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["operation"] = "count_in_range"
    benchmark(lambda: directory.count_in_range(*next(cycle)))


@pytest.mark.parametrize("backend", list(BACKENDS))
def test_directory_range_extract(benchmark, backend, populated):
    built, attrs = populated
    directory = built[backend]
    rng = np.random.default_rng(3)
    bounds = [(lo, lo + 500.0) for lo in rng.uniform(0, 9000, size=64)]
    cycle = itertools.cycle(bounds)

    benchmark.extra_info["backend"] = backend
    benchmark.extra_info["operation"] = "ids_in_range"
    benchmark(lambda: directory.ids_in_range(*next(cycle)))
